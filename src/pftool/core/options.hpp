// PFTool runtime tunables (Sec 4.1.2 item 5).
//
// "We manipulate a list of runtime tunable parameters when issuing each
// PFTool command.  Tunable parameters are (a) number of processes created,
// (b) number of tape drives used, (c) basic file copy size, (d) storage
// pool information, (e) Fuse file chunk size used, and (f) tape restoring
// optimization flag."
#pragma once

#include <cstdint>
#include <string>

#include "fault/plan.hpp"
#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace cpa::pftool {

/// File copy strategy thresholds (Sec 4.1.2 items 3-4).
struct PlannerConfig {
  /// "A single large file ... in the range of 10 GBs to 100 GBs" is split
  /// into equal sub-chunks for N-to-1 parallel copy.
  std::uint64_t large_file_threshold = 10ULL * kGB;
  /// N-to-1 chunk size ("basic file copy size" / CopySize tunable).
  std::uint64_t copy_chunk_size = 4ULL * kGB;
  /// "A file of size greater than 100 GB is considered a very large file"
  /// — goes through ArchiveFUSE as N-to-N.
  std::uint64_t very_large_threshold = 100ULL * kGB;
  /// FUSE chunk size (FuseChunkSize tunable).
  std::uint64_t fuse_chunk_size = 16ULL * kGB;
};

struct PftoolConfig {
  // --- process counts (NumProcs / NumTapeProcs) ---------------------------
  unsigned num_workers = 8;
  unsigned num_readdir = 2;
  /// 0 in the archive direction ("t=0, when in archive process, giving
  /// more worker for copying data").
  unsigned num_tapeprocs = 2;

  PlannerConfig planner;

  // --- per-operation costs --------------------------------------------------
  sim::Tick stat_cost = sim::usecs(500);        // one stat round-trip
  sim::Tick readdir_per_entry = sim::usecs(100);
  /// Per-file open/create/close + metadata-token overhead on the copy
  /// path, charged once per file (before its first chunk moves).  This is
  /// what makes "massive amounts of small" files slow even on fast disk.
  sim::Tick per_file_cost = sim::msecs(2);
  /// Single-stream throughput ceiling of one worker's copy (TCP window +
  /// file-system client limits); 0 = unlimited.
  double per_stream_max_bps = 0.0;
  /// Aggregate ceiling for N writers sharing ONE destination file — the
  /// N-to-1 write-lock/false-sharing penalty (the PLFS problem the paper
  /// cites in Sec 4.1.2 item 4).  GPFS tolerates moderate N-to-1 (the
  /// 10-100 GB band still speeds up with a few workers) but saturates
  /// well below the fabric; ArchiveFUSE N-to-N copies write N distinct
  /// chunk files and escape this limit entirely.
  double nto1_shared_file_bps = 1200.0 * 1e6;
  sim::Tick msg_latency = sim::usecs(50);       // MPI message hop
  /// Stat requests are batched to amortize messages.
  unsigned stat_batch = 64;

  // --- WatchDog ---------------------------------------------------------------
  sim::Tick watchdog_period = sim::minutes(1);
  /// "forces the termination of PFTool runtime activities if the data copy
  /// is stalled without any further progress for a specific amount of time"
  sim::Tick stall_timeout = sim::minutes(30);

  // --- behaviour flags ----------------------------------------------------------
  /// Tape restoring optimization flag: sort recalls into tape order.
  bool tape_optimization = true;
  /// Restart mode: consult the restart journal and skip good chunks.
  bool restartable = false;
  /// Chunk-level recovery: a failed chunk copy (FUSE write error, worker
  /// killed by an FTA node crash, ...) is requeued with backoff instead of
  /// failing the file, up to the policy's attempt budget.  The default
  /// none() preserves the historical fail-fast behaviour.
  fault::RetryPolicy retry = fault::RetryPolicy::none();
  /// Fixity verification (--verify): recompute each copied chunk's content
  /// tag after the transfer and compare against the planned value; tape
  /// recalls additionally report the archive's own fixity verdict.
  bool verify_fixity = false;
  /// Storage pool placement hint for destination files (stgpool support).
  std::string dest_pool_hint;
};

/// Canonical derivation of a chunk's content tag from the whole file's tag.
/// Both the chunked writer and the verifier compute this, so integrity
/// comparison works across representations.
[[nodiscard]] constexpr std::uint64_t chunk_tag(std::uint64_t file_tag,
                                                std::uint64_t index) {
  std::uint64_t x = file_tag ^ (index + 0x9E3779B97F4A7C15ULL);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace cpa::pftool
