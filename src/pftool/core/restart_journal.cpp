#include "pftool/core/restart_journal.hpp"

#include <sstream>

namespace cpa::pftool {

void RestartJournal::begin(const std::string& dst, std::uint64_t file_size,
                           std::uint64_t chunk_count) {
  auto it = entries_.find(dst);
  if (it != entries_.end() && it->second.file_size == file_size &&
      it->second.chunk_count == chunk_count) {
    return;  // resume: keep existing marks
  }
  Entry e;
  e.file_size = file_size;
  e.chunk_count = chunk_count;
  e.good.assign(chunk_count, false);
  entries_[dst] = std::move(e);
  if (hook_) hook_(Op::Begin, dst, file_size, chunk_count);
}

void RestartJournal::mark_good(const std::string& dst, std::uint64_t chunk) {
  auto it = entries_.find(dst);
  if (it != entries_.end() && chunk < it->second.good.size()) {
    it->second.good[chunk] = true;
    if (hook_) hook_(Op::Good, dst, chunk, 0);
  }
}

void RestartJournal::mark_bad(const std::string& dst, std::uint64_t chunk) {
  auto it = entries_.find(dst);
  if (it != entries_.end() && chunk < it->second.good.size()) {
    it->second.good[chunk] = false;
    if (hook_) hook_(Op::Bad, dst, chunk, 0);
  }
}

std::vector<std::uint64_t> RestartJournal::pending(const std::string& dst) const {
  std::vector<std::uint64_t> out;
  auto it = entries_.find(dst);
  if (it == entries_.end()) return out;
  for (std::uint64_t i = 0; i < it->second.good.size(); ++i) {
    if (!it->second.good[i]) out.push_back(i);
  }
  return out;
}

bool RestartJournal::complete(const std::string& dst) const {
  auto it = entries_.find(dst);
  if (it == entries_.end()) return false;
  for (const bool g : it->second.good) {
    if (!g) return false;
  }
  return true;
}

bool RestartJournal::known(const std::string& dst) const {
  return entries_.count(dst) != 0;
}

std::uint64_t RestartJournal::good_count(const std::string& dst) const {
  auto it = entries_.find(dst);
  if (it == entries_.end()) return 0;
  std::uint64_t n = 0;
  for (const bool g : it->second.good) n += g ? 1 : 0;
  return n;
}

void RestartJournal::forget(const std::string& dst) {
  entries_.erase(dst);
  if (hook_) hook_(Op::Forget, dst, 0, 0);
}

std::string RestartJournal::serialize() const {
  std::ostringstream out;
  for (const auto& [dst, e] : entries_) {
    out << dst << '|' << e.file_size << '|' << e.chunk_count << '|';
    for (const bool g : e.good) out << (g ? '1' : '0');
    out << '\n';
  }
  return out.str();
}

std::optional<RestartJournal> RestartJournal::parse(const std::string& text) {
  RestartJournal journal;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t p1 = line.find('|');
    if (p1 == std::string::npos) return std::nullopt;
    const std::size_t p2 = line.find('|', p1 + 1);
    if (p2 == std::string::npos) return std::nullopt;
    const std::size_t p3 = line.find('|', p2 + 1);
    if (p3 == std::string::npos) return std::nullopt;
    Entry e;
    try {
      e.file_size = std::stoull(line.substr(p1 + 1, p2 - p1 - 1));
      e.chunk_count = std::stoull(line.substr(p2 + 1, p3 - p2 - 1));
    } catch (...) {
      return std::nullopt;
    }
    const std::string bitmap = line.substr(p3 + 1);
    if (bitmap.size() != e.chunk_count) return std::nullopt;
    e.good.reserve(bitmap.size());
    for (const char c : bitmap) {
      if (c != '0' && c != '1') return std::nullopt;
      e.good.push_back(c == '1');
    }
    journal.entries_[line.substr(0, p1)] = std::move(e);
  }
  return journal;
}

}  // namespace cpa::pftool
