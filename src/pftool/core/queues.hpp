// The Manager's work queues (Sec 4.1.1 / Figure 3).
//
//   DirQ    — exposed directories awaiting a ReadDir process;
//   NameQ   — file names awaiting stat by a Worker;
//   CopyQ   — stated regular copy jobs awaiting a Worker;
//   TapeCQ  — per-cartridge restore queues ordered by tape sequence
//             ("The tape files with the same Tape ID are put into a
//              corresponding TapeCQ based on their ascending tape
//              sequential number", Sec 4.1.2 item 2).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

namespace cpa::pftool {

/// FIFO with high-watermark statistics (reported by OutPutProc).
template <typename T>
class WorkQueue {
 public:
  void push(T item) {
    items_.push_back(std::move(item));
    ++total_;
    max_depth_ = std::max(max_depth_, items_.size());
  }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  T pop() {
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }
  [[nodiscard]] std::uint64_t total_enqueued() const { return total_; }
  [[nodiscard]] std::size_t max_depth() const { return max_depth_; }

 private:
  std::deque<T> items_;
  std::uint64_t total_ = 0;
  std::size_t max_depth_ = 0;
};

/// Per-cartridge restore queues, each kept in ascending tape-sequence
/// order so a TapeProc reads front-to-back without rewinding.
template <typename T>
class TapeCopyQueues {
 public:
  void add(std::uint64_t cartridge, std::uint64_t seq, T item) {
    queues_[cartridge].emplace(seq, std::move(item));
    ++total_;
  }
  [[nodiscard]] bool empty() const { return queues_.empty(); }
  [[nodiscard]] std::size_t cartridge_count() const { return queues_.size(); }
  [[nodiscard]] std::uint64_t total_enqueued() const { return total_; }

  /// Pops the entire queue for the lowest-id pending cartridge: the unit
  /// of work handed to one TapeProc.  Returns false when empty.
  bool pop_cartridge(std::uint64_t* cartridge, std::vector<T>* items) {
    if (queues_.empty()) return false;
    auto it = queues_.begin();
    *cartridge = it->first;
    items->clear();
    items->reserve(it->second.size());
    for (auto& [seq, item] : it->second) items->push_back(std::move(item));
    queues_.erase(it);
    return true;
  }

 private:
  std::map<std::uint64_t, std::multimap<std::uint64_t, T>> queues_;
  std::uint64_t total_ = 0;
};

}  // namespace cpa::pftool
