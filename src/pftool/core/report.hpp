// PFTool's end-of-job performance report ("A performance report is
// generated after finishing each parallel archive job", Sec 4.1.1) and the
// WatchDog's periodic progress record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace cpa::pftool {

struct JobReport {
  std::string command;        // "pfls" / "pfcp" / "pfcm"
  std::string src_root;
  std::string dst_root;
  sim::Tick started = 0;
  sim::Tick finished = 0;
  bool aborted_by_watchdog = false;
  /// The attempt died in a whole-host power failure (the report is the
  /// partial progress at the instant of the crash).
  bool aborted_by_crash = false;

  // Tree walk.
  std::uint64_t dirs_walked = 0;
  std::uint64_t files_stated = 0;

  // Copy.
  std::uint64_t files_copied = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t chunks_copied = 0;
  std::uint64_t chunks_skipped_restart = 0;  // known-good on restart
  std::uint64_t fuse_files = 0;              // very large via ArchiveFUSE
  std::uint64_t files_failed = 0;

  // Recovery (fault injection).
  std::uint64_t chunk_retries = 0;    // chunk attempts requeued with backoff
  std::uint64_t worker_crashes = 0;   // workers killed by FTA node crashes

  // Tape restore.
  std::uint64_t files_restored = 0;
  std::uint64_t tapes_touched = 0;

  // Fixity (--verify and recall-time verification).  A file counted in
  // files_unrepairable is also in files_failed; it is never retried.
  std::uint64_t chunks_verified = 0;     // pfcp --verify recompute-and-compare
  std::uint64_t fixity_verified = 0;     // tape reads that passed fixity
  std::uint64_t fixity_mismatches = 0;   // tape reads failing fixity
  std::uint64_t files_unrepairable = 0;  // every replica failed fixity

  // Compare (pfcm).
  std::uint64_t files_compared = 0;
  std::uint64_t files_matched = 0;
  std::uint64_t files_mismatched = 0;

  // Queue high-watermarks (Manager diagnostics in the final report).
  std::size_t dirq_max_depth = 0;
  std::size_t nameq_max_depth = 0;
  std::size_t copyq_max_depth = 0;
  std::uint64_t tapecq_cartridges = 0;

  [[nodiscard]] double elapsed_seconds() const {
    return sim::to_seconds(finished - started);
  }
  [[nodiscard]] double rate_bps() const {
    const double dt = elapsed_seconds();
    return dt > 0 ? static_cast<double>(bytes_copied) / dt : 0.0;
  }
  /// Human-readable multi-line summary.
  [[nodiscard]] std::string render() const;
};

/// One WatchDog sample: "records the current and historical statistics of
/// PFTool such as ... number of bytes copied in the past T minutes".
struct WatchdogSample {
  sim::Tick at = 0;
  std::uint64_t total_files = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t window_files = 0;
  std::uint64_t window_bytes = 0;
};

}  // namespace cpa::pftool
