// Copy planning: how a file moves, and in how many pieces.
//
// Sec 4.1.2:  item 3 — "We divide a single large file into N equal-size
// sub-chunks and assign them to available Workers ... a typical parallel
// N-to-1 data copy."  Item 4 — very large files go through ArchiveFUSE,
// "converted an N-to-1 parallel I/O operation into an N-to-N parallel I/O
// operation."
#pragma once

#include <cstdint>
#include <vector>

#include "pftool/core/options.hpp"

namespace cpa::pftool {

enum class CopyMode : std::uint8_t {
  Whole,        // one worker, one piece
  ChunkedNto1,  // N workers into one destination file
  FuseNtoN,     // N workers into N chunk files via ArchiveFUSE
};

struct ChunkSpec {
  std::uint64_t index = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

struct CopyPlan {
  CopyMode mode = CopyMode::Whole;
  std::uint64_t file_size = 0;
  std::vector<ChunkSpec> chunks;  // exactly one for Whole
};

class ChunkPlanner {
 public:
  explicit ChunkPlanner(PlannerConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const PlannerConfig& config() const { return cfg_; }

  [[nodiscard]] CopyMode mode_for(std::uint64_t size) const {
    if (size >= cfg_.very_large_threshold) return CopyMode::FuseNtoN;
    if (size >= cfg_.large_file_threshold) return CopyMode::ChunkedNto1;
    return CopyMode::Whole;
  }

  [[nodiscard]] CopyPlan plan(std::uint64_t size) const {
    CopyPlan plan;
    plan.mode = mode_for(size);
    plan.file_size = size;
    const std::uint64_t piece = plan.mode == CopyMode::Whole   ? size
                                : plan.mode == CopyMode::FuseNtoN
                                    ? cfg_.fuse_chunk_size
                                    : cfg_.copy_chunk_size;
    if (plan.mode == CopyMode::Whole || size == 0) {
      plan.chunks.push_back(ChunkSpec{0, 0, size});
      return plan;
    }
    std::uint64_t offset = 0, index = 0;
    while (offset < size) {
      const std::uint64_t bytes = std::min(piece, size - offset);
      plan.chunks.push_back(ChunkSpec{index++, offset, bytes});
      offset += bytes;
    }
    return plan;
  }

 private:
  PlannerConfig cfg_;
};

}  // namespace cpa::pftool
