// Restart-able file transfer (Sec 4.5).
//
// "What about restarting a 40 Terabyte file, we don't want to start it
//  from the beginning.  To get around this, we mark regular file chunks or
//  FUSE file chunks as good or bad so that we don't have to re-send known
//  good chunks.  This is a unique incremental parallel archive feature."
//
// The journal records per-destination chunk completion.  A restarted
// transfer asks `pending()` and re-sends only those chunks.  `serialize` /
// `parse` give the thread-based engine durable journals on disk.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cpa::pftool {

class RestartJournal {
 public:
  struct Entry {
    std::uint64_t file_size = 0;
    std::uint64_t chunk_count = 0;
    std::vector<bool> good;
  };

  /// Mutation ops reported to the durability listener (WAL redo records).
  enum class Op : char { Begin = 'b', Good = 'g', Bad = 'x', Forget = 'f' };

  /// Fired after every in-memory mutation: (op, dst, a, b) where a/b are
  /// (size, chunk_count) for Begin and (chunk, 0) for Good/Bad.  All four
  /// ops are idempotent, so redo replay may apply them repeatedly.
  using MutationHook =
      std::function<void(Op, const std::string&, std::uint64_t, std::uint64_t)>;
  void set_mutation_hook(MutationHook hook) { hook_ = std::move(hook); }

  /// Crash wipe before checkpoint-load + log replay.
  void clear() { entries_.clear(); }

  /// Registers (or resets) a transfer.  Existing good marks for the same
  /// destination are preserved only when size and chunk count still match
  /// — a changed source invalidates the journal.
  void begin(const std::string& dst, std::uint64_t file_size,
             std::uint64_t chunk_count);

  void mark_good(const std::string& dst, std::uint64_t chunk);
  void mark_bad(const std::string& dst, std::uint64_t chunk);

  /// Chunks still needing transfer, ascending.
  [[nodiscard]] std::vector<std::uint64_t> pending(const std::string& dst) const;
  [[nodiscard]] bool complete(const std::string& dst) const;
  [[nodiscard]] bool known(const std::string& dst) const;
  [[nodiscard]] std::uint64_t good_count(const std::string& dst) const;

  /// Removes a finished transfer's record.
  void forget(const std::string& dst);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Line-oriented text form: "dst|size|count|bitmap".
  [[nodiscard]] std::string serialize() const;
  static std::optional<RestartJournal> parse(const std::string& text);

 private:
  std::map<std::string, Entry> entries_;
  MutationHook hook_;
};

}  // namespace cpa::pftool
