// The thread-based PFTool engine: pfls/pfcp/pfcm over real directories.
//
// Same manager/worker protocol as the simulated engine — a shared work
// queue of directory-walk, chunk-copy and compare tasks drained by a
// worker pool — but running on std::thread against a FileOps backend.
// Large files are split into chunks so several workers stream one file in
// parallel (the paper's N-to-1 copy), and the restart journal from
// pftool/core marks chunks good so interrupted transfers resume without
// re-sending (Sec 4.5).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>

#include "pftool/core/restart_journal.hpp"
#include "pftool/rt/file_ops.hpp"

namespace cpa::pftool::rt {

struct RtConfig {
  unsigned workers = 4;
  /// Files at least this large are copied/compared in parallel chunks.
  std::uint64_t large_file_threshold = 64ULL << 20;
  std::uint64_t chunk_size = 16ULL << 20;
  /// Restartable mode: load/persist the journal at this path (empty =
  /// journaling disabled).
  std::string journal_path;
  /// --verify: after each copied chunk, read both sides back and compare
  /// (recompute-and-compare fixity).  A mismatch fails the file.
  bool verify = false;
};

struct RtReport {
  std::uint64_t dirs_walked = 0;
  std::uint64_t files_stated = 0;
  std::uint64_t files_copied = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t chunks_copied = 0;
  std::uint64_t chunks_skipped_restart = 0;
  std::uint64_t files_failed = 0;
  std::uint64_t files_compared = 0;
  std::uint64_t files_matched = 0;
  std::uint64_t files_mismatched = 0;
  std::uint64_t chunks_verified = 0;     // --verify readback comparisons run
  std::uint64_t verify_mismatches = 0;   // readbacks that differed
  double elapsed_seconds = 0.0;
};

class RtEngine {
 public:
  /// `ops` must outlive the engine; pass nullptr to use a process-wide
  /// PosixFileOps.
  explicit RtEngine(RtConfig cfg, FileOps* ops = nullptr);

  RtReport pfls(const std::string& root);
  RtReport pfcp(const std::string& src_root, const std::string& dst_root);
  RtReport pfcm(const std::string& src_root, const std::string& dst_root);

 private:
  enum class Mode { List, Copy, Compare };
  struct Task;
  struct Shared;

  RtReport run(Mode mode, const std::string& src_root,
               const std::string& dst_root);

  RtConfig cfg_;
  FileOps* ops_;
};

}  // namespace cpa::pftool::rt
