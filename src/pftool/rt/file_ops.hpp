// File-system operations for the thread-based (real) PFTool engine.
//
// The engine is written against this interface so tests can inject
// failures; `PosixFileOps` is the production implementation over the local
// file system (the "leverage all free file movement tools in Linux" side
// of the paper: pfls/pfcp/pfcm run on ordinary directories).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cpa::pftool::rt {

struct FileInfo {
  std::string path;
  std::uint64_t size = 0;
  bool is_dir = false;
};

class FileOps {
 public:
  virtual ~FileOps() = default;

  /// Stats a path; returns false if it does not exist.
  virtual bool stat(const std::string& path, FileInfo* out) = 0;
  /// Lists directory entries (names, not paths); false on error.
  virtual bool list_dir(const std::string& path,
                        std::vector<FileInfo>* entries) = 0;
  virtual bool make_dirs(const std::string& path) = 0;
  /// Ensures a file exists with exactly `size` bytes (sparse OK).
  virtual bool create_sized(const std::string& path, std::uint64_t size) = 0;
  /// Copies [offset, offset+len) from src into dst at the same offset.
  virtual bool copy_range(const std::string& src, const std::string& dst,
                          std::uint64_t offset, std::uint64_t len) = 0;
  /// Byte-compares [offset, offset+len) of two files.
  virtual bool compare_range(const std::string& src, const std::string& dst,
                             std::uint64_t offset, std::uint64_t len,
                             bool* equal) = 0;
  virtual bool read_file(const std::string& path, std::string* out) = 0;
  virtual bool write_file(const std::string& path, const std::string& data) = 0;
};

class PosixFileOps final : public FileOps {
 public:
  bool stat(const std::string& path, FileInfo* out) override;
  bool list_dir(const std::string& path, std::vector<FileInfo>* entries) override;
  bool make_dirs(const std::string& path) override;
  bool create_sized(const std::string& path, std::uint64_t size) override;
  bool copy_range(const std::string& src, const std::string& dst,
                  std::uint64_t offset, std::uint64_t len) override;
  bool compare_range(const std::string& src, const std::string& dst,
                     std::uint64_t offset, std::uint64_t len, bool* equal) override;
  bool read_file(const std::string& path, std::string* out) override;
  bool write_file(const std::string& path, const std::string& data) override;
};

}  // namespace cpa::pftool::rt
