#include "pftool/rt/engine.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

namespace cpa::pftool::rt {
namespace {

PosixFileOps& default_ops() {
  static PosixFileOps ops;
  return ops;
}

std::string join(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

std::string map_dst(const std::string& src_root, const std::string& dst_root,
                    const std::string& src_path) {
  if (src_path == src_root) return dst_root;
  return dst_root + src_path.substr(src_root.size());
}

}  // namespace

struct RtEngine::Task {
  enum class Kind { Dir, Chunk } kind = Kind::Dir;
  std::string src;
  std::string dst;
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  std::uint64_t chunk_index = 0;
};

struct RtEngine::Shared {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Task> queue;
  unsigned active = 0;
  Mode mode = Mode::List;
  std::string src_root, dst_root;
  RtReport report;

  // Per-destination chunk completion tracking.
  struct FileState {
    std::uint64_t remaining = 0;
    std::uint64_t size = 0;
    bool failed = false;
    bool mismatched = false;
  };
  std::map<std::string, FileState> files;

  RestartJournal journal;
  bool journaling = false;
  unsigned journal_dirty = 0;
};

RtEngine::RtEngine(RtConfig cfg, FileOps* ops)
    : cfg_(std::move(cfg)), ops_(ops != nullptr ? ops : &default_ops()) {}

RtReport RtEngine::pfls(const std::string& root) {
  return run(Mode::List, root, "");
}

RtReport RtEngine::pfcp(const std::string& src_root, const std::string& dst_root) {
  return run(Mode::Copy, src_root, dst_root);
}

RtReport RtEngine::pfcm(const std::string& src_root, const std::string& dst_root) {
  return run(Mode::Compare, src_root, dst_root);
}

RtReport RtEngine::run(Mode mode, const std::string& src_root,
                       const std::string& dst_root) {
  const auto t0 = std::chrono::steady_clock::now();
  Shared sh;
  sh.mode = mode;
  sh.src_root = src_root;
  sh.dst_root = dst_root;
  sh.journaling = mode == Mode::Copy && !cfg_.journal_path.empty();
  if (sh.journaling) {
    std::string text;
    if (ops_->read_file(cfg_.journal_path, &text)) {
      if (auto parsed = RestartJournal::parse(text)) sh.journal = std::move(*parsed);
    }
  }

  // Enqueues the chunk tasks for one regular file (caller holds sh.mu).
  auto plan_file = [&](const std::string& src, std::uint64_t size) {
    ++sh.report.files_stated;
    if (mode == Mode::List) return;
    const std::string dst = map_dst(src_root, dst_root, src);
    const std::uint64_t chunk =
        size >= cfg_.large_file_threshold ? cfg_.chunk_size : std::max<std::uint64_t>(size, 1);
    const std::uint64_t count = size == 0 ? 1 : (size + chunk - 1) / chunk;

    std::vector<std::uint64_t> pending;
    if (sh.journaling) {
      sh.journal.begin(dst, size, count);
      pending = sh.journal.pending(dst);
      sh.report.chunks_skipped_restart += count - pending.size();
    } else {
      pending.resize(count);
      for (std::uint64_t i = 0; i < count; ++i) pending[i] = i;
    }

    if (mode == Mode::Copy) {
      FileInfo existing;
      const bool have = ops_->stat(dst, &existing) && !existing.is_dir &&
                        existing.size == size;
      if (!have && !ops_->create_sized(dst, size)) {
        ++sh.report.files_failed;
        return;
      }
    }

    auto& st = sh.files[dst];
    st.remaining = pending.size();
    st.size = size;
    if (pending.empty()) {
      // Fully restart-skipped file.
      ++sh.report.files_copied;
      sh.files.erase(dst);
      if (sh.journaling) sh.journal.forget(dst);
      return;
    }
    for (const std::uint64_t i : pending) {
      Task t;
      t.kind = Task::Kind::Chunk;
      t.src = src;
      t.dst = dst;
      t.chunk_index = i;
      t.offset = i * chunk;
      t.len = std::min(chunk, size - std::min(size, t.offset));
      sh.queue.push_back(std::move(t));
    }
  };

  // Seed.
  {
    FileInfo root;
    if (!ops_->stat(src_root, &root)) {
      sh.report.files_failed = 1;
      sh.report.elapsed_seconds = 0;
      return sh.report;
    }
    if (mode == Mode::Copy) {
      ops_->make_dirs(root.is_dir ? dst_root
                                  : dst_root.substr(0, dst_root.find_last_of('/')));
    }
    std::lock_guard<std::mutex> lock(sh.mu);
    if (root.is_dir) {
      Task t;
      t.kind = Task::Kind::Dir;
      t.src = src_root;
      sh.queue.push_back(std::move(t));
    } else {
      plan_file(src_root, root.size);
    }
  }

  auto worker = [&] {
    std::unique_lock<std::mutex> lock(sh.mu);
    for (;;) {
      sh.cv.wait(lock, [&] {
        return !sh.queue.empty() || sh.active == 0;
      });
      if (sh.queue.empty()) {
        if (sh.active == 0) return;  // drained
        continue;
      }
      Task task = std::move(sh.queue.front());
      sh.queue.pop_front();
      ++sh.active;
      lock.unlock();

      if (task.kind == Task::Kind::Dir) {
        std::vector<FileInfo> entries;
        const bool ok = ops_->list_dir(task.src, &entries);
        lock.lock();
        ++sh.report.dirs_walked;
        if (!ok) {
          ++sh.report.files_failed;
        } else {
          for (const FileInfo& e : entries) {
            const std::string child = join(task.src, e.path);
            if (e.is_dir) {
              if (mode == Mode::Copy) {
                lock.unlock();
                ops_->make_dirs(map_dst(src_root, dst_root, child));
                lock.lock();
              }
              Task t;
              t.kind = Task::Kind::Dir;
              t.src = child;
              sh.queue.push_back(std::move(t));
            } else {
              plan_file(child, e.size);
            }
          }
        }
      } else {
        bool ok = true;
        bool equal = true;
        bool verified = false;
        bool verify_ok = true;
        if (mode == Mode::Copy) {
          ok = ops_->copy_range(task.src, task.dst, task.offset, task.len);
          if (ok && cfg_.verify) {
            // --verify: read both sides back and compare the bytes that
            // just landed, so a torn or corrupted write fails the file
            // instead of surviving silently.
            verified = true;
            bool same = true;
            verify_ok = ops_->compare_range(task.src, task.dst, task.offset,
                                            task.len, &same) &&
                        same;
          }
        } else {
          ok = ops_->compare_range(task.src, task.dst, task.offset, task.len,
                                   &equal);
        }
        lock.lock();
        auto it = sh.files.find(task.dst);
        if (it != sh.files.end()) {
          auto& st = it->second;
          if (verified) {
            ++sh.report.chunks_verified;
            if (!verify_ok) {
              ++sh.report.verify_mismatches;
              st.failed = true;
              if (sh.journaling) sh.journal.mark_bad(task.dst, task.chunk_index);
            }
          }
          if (!ok) {
            st.failed = true;
            if (sh.journaling) sh.journal.mark_bad(task.dst, task.chunk_index);
          } else if (mode == Mode::Copy && verify_ok) {
            ++sh.report.chunks_copied;
            sh.report.bytes_copied += task.len;
            if (sh.journaling) {
              sh.journal.mark_good(task.dst, task.chunk_index);
              if (++sh.journal_dirty >= 32) {
                sh.journal_dirty = 0;
                const std::string text = sh.journal.serialize();
                lock.unlock();
                ops_->write_file(cfg_.journal_path, text);
                lock.lock();
                it = sh.files.find(task.dst);
              }
            }
          } else if (!equal) {
            st.mismatched = true;
          }
          if (it != sh.files.end() && --it->second.remaining == 0) {
            const auto st_final = it->second;
            sh.files.erase(it);
            if (st_final.failed) {
              ++sh.report.files_failed;
            } else if (mode == Mode::Copy) {
              ++sh.report.files_copied;
              if (sh.journaling) sh.journal.forget(task.dst);
            } else {
              ++sh.report.files_compared;
              if (st_final.mismatched) {
                ++sh.report.files_mismatched;
              } else {
                ++sh.report.files_matched;
              }
            }
          }
        }
      }
      --sh.active;
      sh.cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg_.workers);
  for (unsigned i = 0; i < std::max(1u, cfg_.workers); ++i) {
    threads.emplace_back(worker);
  }
  for (auto& t : threads) t.join();

  if (sh.journaling) {
    ops_->write_file(cfg_.journal_path, sh.journal.serialize());
  }
  sh.report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return sh.report;
}

}  // namespace cpa::pftool::rt
