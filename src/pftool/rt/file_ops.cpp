#include "pftool/rt/file_ops.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>

namespace cpa::pftool::rt {
namespace fs = std::filesystem;
namespace {

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

bool PosixFileOps::stat(const std::string& path, FileInfo* out) {
  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  if (ec || st.type() == fs::file_type::not_found) return false;
  out->path = path;
  out->is_dir = fs::is_directory(st);
  out->size = out->is_dir ? 0 : fs::file_size(path, ec);
  return !ec;
}

bool PosixFileOps::list_dir(const std::string& path,
                            std::vector<FileInfo>* entries) {
  entries->clear();
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(path, ec)) {
    FileInfo info;
    info.path = entry.path().filename().string();
    std::error_code sec;
    info.is_dir = entry.is_directory(sec);
    info.size = info.is_dir ? 0 : entry.file_size(sec);
    entries->push_back(std::move(info));
  }
  if (ec) return false;
  // Deterministic order for reproducible reports.
  std::sort(entries->begin(), entries->end(),
            [](const FileInfo& a, const FileInfo& b) { return a.path < b.path; });
  return true;
}

bool PosixFileOps::make_dirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  return !ec || fs::is_directory(path);
}

bool PosixFileOps::create_sized(const std::string& path, std::uint64_t size) {
  FdCloser fd{::open(path.c_str(), O_WRONLY | O_CREAT, 0644)};
  if (fd.fd < 0) return false;
  return ::ftruncate(fd.fd, static_cast<off_t>(size)) == 0;
}

bool PosixFileOps::copy_range(const std::string& src, const std::string& dst,
                              std::uint64_t offset, std::uint64_t len) {
  FdCloser in{::open(src.c_str(), O_RDONLY)};
  if (in.fd < 0) return false;
  FdCloser out{::open(dst.c_str(), O_WRONLY)};
  if (out.fd < 0) return false;
  constexpr std::size_t kBuf = 1 << 20;
  const auto buf = std::make_unique<char[]>(kBuf);
  std::uint64_t done = 0;
  while (done < len) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(kBuf, len - done));
    const ssize_t n =
        ::pread(in.fd, buf.get(), want, static_cast<off_t>(offset + done));
    if (n < 0) return false;
    if (n == 0) break;  // source shrank: treat as done
    ssize_t written = 0;
    while (written < n) {
      const ssize_t w = ::pwrite(out.fd, buf.get() + written,
                                 static_cast<std::size_t>(n - written),
                                 static_cast<off_t>(offset + done + written));
      if (w <= 0) return false;
      written += w;
    }
    done += static_cast<std::uint64_t>(n);
  }
  return true;
}

bool PosixFileOps::compare_range(const std::string& src, const std::string& dst,
                                 std::uint64_t offset, std::uint64_t len,
                                 bool* equal) {
  FdCloser a{::open(src.c_str(), O_RDONLY)};
  FdCloser b{::open(dst.c_str(), O_RDONLY)};
  if (a.fd < 0 || b.fd < 0) return false;
  constexpr std::size_t kBuf = 1 << 20;
  const auto ba = std::make_unique<char[]>(kBuf);
  const auto bb = std::make_unique<char[]>(kBuf);
  std::uint64_t done = 0;
  *equal = true;
  while (done < len) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(kBuf, len - done));
    const ssize_t na = ::pread(a.fd, ba.get(), want, static_cast<off_t>(offset + done));
    const ssize_t nb = ::pread(b.fd, bb.get(), want, static_cast<off_t>(offset + done));
    if (na < 0 || nb < 0) return false;
    if (na != nb || std::memcmp(ba.get(), bb.get(), static_cast<std::size_t>(na)) != 0) {
      *equal = false;
      return true;
    }
    if (na == 0) break;
    done += static_cast<std::uint64_t>(na);
  }
  return true;
}

bool PosixFileOps::read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

bool PosixFileOps::write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << data;
  return static_cast<bool>(out);
}

}  // namespace cpa::pftool::rt
