#include "tape/drive.hpp"

#include <cassert>
#include <utility>

namespace cpa::tape {

TapeDrive::TapeDrive(sim::Simulation& sim, sim::FlowNetwork& net,
                     std::string name, TapeTimings timings)
    : sim_(sim), net_(net), name_(std::move(name)), timings_(timings) {
  rate_pool_ = net_.add_pool(name_ + ".rate", timings_.stream_rate_bps);
  cache_instruments();
}

void TapeDrive::set_observer(obs::Observer& obs) {
  obs_ = &obs;
  cache_instruments();
}

void TapeDrive::cache_instruments() {
  obs::MetricsRegistry& m = obs_->metrics();
  c_mounts_ = &m.counter("tape.mounts");
  c_unmounts_ = &m.counter("tape.unmounts");
  c_handoffs_ = &m.counter("tape.handoffs");
  c_seeks_ = &m.counter("tape.seeks");
  c_backhitches_ = &m.counter("tape.backhitches");
  c_write_txns_ = &m.counter("tape.write_txns");
  c_read_txns_ = &m.counter("tape.read_txns");
  c_bytes_written_ = &m.counter("tape.bytes_written");
  c_bytes_read_ = &m.counter("tape.bytes_read");
  g_mount_seconds_ = &m.gauge("tape.mount_seconds");
  g_seek_seconds_ = &m.gauge("tape.seek_seconds");
  g_backhitch_seconds_ = &m.gauge("tape.backhitch_seconds");
}

void TapeDrive::set_failed(bool failed) {
  if (failed_ == failed) return;
  failed_ = failed;
  if (failed) {
    obs_->trace().instant(obs::Component::Tape, name_, "drive_failed",
                          sim_.now());
    if (interrupt_) {
      auto abort = std::move(interrupt_);
      interrupt_ = nullptr;
      abort();
    }
  } else {
    obs_->trace().instant(obs::Component::Tape, name_, "drive_repaired",
                          sim_.now());
  }
}

void TapeDrive::enqueue(std::function<void(std::function<void()>)> op) {
  ops_.push_back(std::move(op));
  if (!busy_) run_next();
}

void TapeDrive::run_next() {
  if (ops_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  auto op = std::move(ops_.front());
  ops_.pop_front();
  // Each op receives a completion continuation that starts the next op.
  op([this] { run_next(); });
}

void TapeDrive::with_ownership(NodeId node, std::function<void()> then) {
  if (owner_ == node || owner_ == kNoNode) {
    owner_ = node;
    then();
    return;
  }
  // LAN-free handoff: the new node rewinds the tape and re-verifies the
  // label before it can use the mounted volume (Sec 6.2).
  ++stats_.handoffs;
  ++stats_.label_verifies;
  const sim::Tick penalty = timings_.rewind_time(position_) + timings_.label_verify;
  stats_.seek_time += timings_.rewind_time(position_);
  c_handoffs_->inc();
  g_seek_seconds_->add(sim::to_seconds(timings_.rewind_time(position_)));
  obs_->trace().complete(obs::Component::Tape, name_, "handoff", sim_.now(),
                         sim_.now() + penalty);
  position_ = 0;
  owner_ = node;
  sim_.after(penalty, std::move(then));
}

void TapeDrive::mount(Cartridge* cartridge, std::function<void()> done) {
  assert(cartridge != nullptr);
  enqueue([this, cartridge, done = std::move(done)](std::function<void()> next) {
    assert(cartridge_ == nullptr && "drive already has a mounted cartridge");
    const sim::Tick t = timings_.load + timings_.label_verify;
    ++stats_.mounts;
    ++stats_.label_verifies;
    stats_.mount_time += t;
    c_mounts_->inc();
    g_mount_seconds_->add(sim::to_seconds(t));
    obs_->trace().complete(obs::Component::Tape, name_, "mount", sim_.now(),
                           sim_.now() + t);
    sim_.after(t, [this, cartridge, done, next] {
      cartridge_ = cartridge;
      position_ = 0;
      owner_ = kNoNode;
      if (done) done();
      next();
    });
  });
}

void TapeDrive::unmount(std::function<void()> done) {
  enqueue([this, done = std::move(done)](std::function<void()> next) {
    assert(cartridge_ != nullptr && "no cartridge to unmount");
    const sim::Tick rewind = timings_.rewind_time(position_);
    const sim::Tick t = rewind + timings_.unload;
    ++stats_.unmounts;
    stats_.seek_time += rewind;
    stats_.mount_time += timings_.unload;
    c_unmounts_->inc();
    g_seek_seconds_->add(sim::to_seconds(rewind));
    g_mount_seconds_->add(sim::to_seconds(timings_.unload));
    obs_->trace().complete(obs::Component::Tape, name_, "unmount", sim_.now(),
                           sim_.now() + t);
    sim_.after(t, [this, done, next] {
      cartridge_ = nullptr;
      position_ = 0;
      owner_ = kNoNode;
      if (done) done();
      next();
    });
  });
}

void TapeDrive::write_object(NodeId node, std::uint64_t object_id,
                             std::uint64_t bytes, std::vector<sim::PathLeg> path,
                             std::function<void(const Segment*)> done,
                             obs::SpanId parent) {
  const sim::Tick enq = sim_.now();
  enqueue([this, node, object_id, bytes, enq, parent, path = std::move(path),
           done = std::move(done)](std::function<void()> next) mutable {
    if (failed_ || cartridge_ == nullptr || !cartridge_->fits(bytes)) {
      if (done) done(nullptr);
      next();
      return;
    }
    obs::TraceRecorder& tr = obs_->trace();
    if (sim_.now() > enq) {
      // The op sat behind earlier ops in the drive's FIFO.
      tr.link(parent, tr.complete(obs::Component::Tape, name_, "drive_wait",
                                  enq, sim_.now()));
    }
    const obs::SpanId sp =
        tr.begin(obs::Component::Tape, name_, "write", sim_.now());
    tr.link(parent, sp);
    tr.arg_num(sp, "bytes", bytes);
    const sim::Tick own0 = sim_.now();
    with_ownership(node, [this, object_id, bytes, own0, path = std::move(path),
                          done, next, sp]() mutable {
      obs::TraceRecorder& tr = obs_->trace();
      if (sim_.now() > own0) {
        tr.link(sp, tr.complete(obs::Component::Tape, name_, "handoff_wait",
                                own0, sim_.now()));
      }
      // Position to end-of-data for the append.
      const std::uint64_t end = cartridge_->bytes_used();
      const sim::Tick seek = timings_.seek_time(position_, end);
      if (seek > 0) {
        ++stats_.seeks;
        stats_.seek_time += seek;
        c_seeks_->inc();
        g_seek_seconds_->add(sim::to_seconds(seek));
        tr.link(sp, tr.complete(obs::Component::Tape, name_, "position",
                                sim_.now(), sim_.now() + seek));
      }
      position_ = end;
      sim_.after(seek, [this, object_id, bytes, path = std::move(path), done,
                        next, sp]() mutable {
        if (failed_) {
          // The drive died during the mechanical phase.
          obs_->trace().end(sp, sim_.now());
          if (done) done(nullptr);
          next();
          return;
        }
        path.push_back(rate_pool_);
        const sim::Tick t0 = sim_.now();
        // Parent context links the transfer flow's probe span under the
        // write span (the profiler buckets it as tape transfer).
        obs::TraceRecorder& tr = obs_->trace();
        tr.push_parent(sp);
        const sim::FlowId fid = net_.start_flow(
            std::move(path), static_cast<double>(bytes),
            [this, object_id, bytes, t0, done, next, sp](const sim::FlowStats&) {
              interrupt_ = nullptr;
              stats_.transfer_time += sim_.now() - t0;
              // Copy: the cartridge's segment vector may reallocate before
              // the backhitch completes.
              const Segment seg = cartridge_->append(object_id, bytes);
              position_ = seg.offset + seg.bytes;
              ++stats_.write_txns;
              stats_.bytes_written += bytes;
              c_write_txns_->inc();
              c_bytes_written_->add(bytes);
              // HSM semantics: one file, one transaction — the drive stops
              // after each object (Sec 6.1).
              ++stats_.backhitches;
              stats_.backhitch_time += timings_.backhitch;
              c_backhitches_->inc();
              g_backhitch_seconds_->add(sim::to_seconds(timings_.backhitch));
              obs::TraceRecorder& tr = obs_->trace();
              tr.link(sp, tr.complete(obs::Component::Tape, name_, "position",
                                      sim_.now(),
                                      sim_.now() + timings_.backhitch));
              sim_.after(timings_.backhitch, [this, done, seg, next, sp] {
                obs_->trace().end(sp, sim_.now());
                if (done) done(&seg);
                next();
              });
            });
        tr.pop_parent();
        interrupt_ = [this, fid, done, next, sp] {
          // abort_flow() fails when the flow's completion is already
          // queued (degenerate 0-byte flows); let it run normally then.
          if (!net_.abort_flow(fid)) return;
          obs_->trace().end(sp, sim_.now());
          if (done) done(nullptr);
          next();
        };
      });
    });
  });
}

void TapeDrive::read_object(NodeId node, std::uint64_t seq,
                            std::vector<sim::PathLeg> path,
                            std::function<void(const Segment*)> done,
                            obs::SpanId parent) {
  const sim::Tick enq = sim_.now();
  enqueue([this, node, seq, enq, parent, path = std::move(path),
           done = std::move(done)](std::function<void()> next) mutable {
    const Segment* seg = !failed_ && cartridge_ != nullptr &&
                                 !cartridge_->damaged()
                             ? cartridge_->segment_by_seq(seq)
                             : nullptr;
    if (seg == nullptr) {
      if (done) done(nullptr);
      next();
      return;
    }
    obs::TraceRecorder& tr = obs_->trace();
    if (sim_.now() > enq) {
      // The op sat behind earlier ops in the drive's FIFO.
      tr.link(parent, tr.complete(obs::Component::Tape, name_, "drive_wait",
                                  enq, sim_.now()));
    }
    const obs::SpanId sp =
        tr.begin(obs::Component::Tape, name_, "read", sim_.now());
    tr.link(parent, sp);
    tr.arg_num(sp, "bytes", seg->bytes);
    const sim::Tick own0 = sim_.now();
    with_ownership(node, [this, seg, own0, path = std::move(path), done, next,
                          sp]() mutable {
      obs::TraceRecorder& tr = obs_->trace();
      if (sim_.now() > own0) {
        tr.link(sp, tr.complete(obs::Component::Tape, name_, "handoff_wait",
                                own0, sim_.now()));
      }
      sim::Tick pre = 0;
      if (position_ != seg->offset) {
        // Non-sequential access: locate plus a repositioning stop.
        const sim::Tick seek = timings_.seek_time(position_, seg->offset);
        ++stats_.seeks;
        stats_.seek_time += seek;
        ++stats_.backhitches;
        stats_.backhitch_time += timings_.backhitch;
        c_seeks_->inc();
        g_seek_seconds_->add(sim::to_seconds(seek));
        c_backhitches_->inc();
        g_backhitch_seconds_->add(sim::to_seconds(timings_.backhitch));
        pre = seek + timings_.backhitch;
        position_ = seg->offset;
        tr.link(sp, tr.complete(obs::Component::Tape, name_, "position",
                                sim_.now(), sim_.now() + pre));
      }
      const Segment segv = *seg;  // copy against vector reallocation
      sim_.after(pre, [this, segv, path = std::move(path), done, next,
                       sp]() mutable {
        if (failed_ || cartridge_ == nullptr || cartridge_->damaged()) {
          // Failed (or the media went bad) during the mechanical phase.
          obs_->trace().end(sp, sim_.now());
          if (done) done(nullptr);
          next();
          return;
        }
        path.push_back(rate_pool_);
        const sim::Tick t0 = sim_.now();
        obs::TraceRecorder& tr = obs_->trace();
        tr.push_parent(sp);
        const sim::FlowId fid = net_.start_flow(
            std::move(path), static_cast<double>(segv.bytes),
            [this, segv, t0, done, next, sp](const sim::FlowStats&) {
              interrupt_ = nullptr;
              stats_.transfer_time += sim_.now() - t0;
              position_ = segv.offset + segv.bytes;
              ++stats_.read_txns;
              stats_.bytes_read += segv.bytes;
              c_read_txns_->inc();
              c_bytes_read_->add(segv.bytes);
              obs_->trace().end(sp, sim_.now());
              if (done) done(&segv);
              next();
            });
        tr.pop_parent();
        interrupt_ = [this, fid, done, next, sp] {
          if (!net_.abort_flow(fid)) return;
          obs_->trace().end(sp, sim_.now());
          if (done) done(nullptr);
          next();
        };
      });
    });
  });
}

}  // namespace cpa::tape
