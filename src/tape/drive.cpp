#include "tape/drive.hpp"

#include <cassert>
#include <utility>

namespace cpa::tape {

TapeDrive::TapeDrive(sim::Simulation& sim, sim::FlowNetwork& net,
                     std::string name, TapeTimings timings)
    : sim_(sim), net_(net), name_(std::move(name)), timings_(timings) {
  rate_pool_ = net_.add_pool(name_ + ".rate", timings_.stream_rate_bps);
}

void TapeDrive::enqueue(std::function<void(std::function<void()>)> op) {
  ops_.push_back(std::move(op));
  if (!busy_) run_next();
}

void TapeDrive::run_next() {
  if (ops_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  auto op = std::move(ops_.front());
  ops_.pop_front();
  // Each op receives a completion continuation that starts the next op.
  op([this] { run_next(); });
}

void TapeDrive::with_ownership(NodeId node, std::function<void()> then) {
  if (owner_ == node || owner_ == kNoNode) {
    owner_ = node;
    then();
    return;
  }
  // LAN-free handoff: the new node rewinds the tape and re-verifies the
  // label before it can use the mounted volume (Sec 6.2).
  ++stats_.handoffs;
  ++stats_.label_verifies;
  const sim::Tick penalty = timings_.rewind_time(position_) + timings_.label_verify;
  stats_.seek_time += timings_.rewind_time(position_);
  position_ = 0;
  owner_ = node;
  sim_.after(penalty, std::move(then));
}

void TapeDrive::mount(Cartridge* cartridge, std::function<void()> done) {
  assert(cartridge != nullptr);
  enqueue([this, cartridge, done = std::move(done)](std::function<void()> next) {
    assert(cartridge_ == nullptr && "drive already has a mounted cartridge");
    const sim::Tick t = timings_.load + timings_.label_verify;
    ++stats_.mounts;
    ++stats_.label_verifies;
    stats_.mount_time += t;
    sim_.after(t, [this, cartridge, done, next] {
      cartridge_ = cartridge;
      position_ = 0;
      owner_ = kNoNode;
      if (done) done();
      next();
    });
  });
}

void TapeDrive::unmount(std::function<void()> done) {
  enqueue([this, done = std::move(done)](std::function<void()> next) {
    assert(cartridge_ != nullptr && "no cartridge to unmount");
    const sim::Tick rewind = timings_.rewind_time(position_);
    const sim::Tick t = rewind + timings_.unload;
    ++stats_.unmounts;
    stats_.seek_time += rewind;
    stats_.mount_time += timings_.unload;
    sim_.after(t, [this, done, next] {
      cartridge_ = nullptr;
      position_ = 0;
      owner_ = kNoNode;
      if (done) done();
      next();
    });
  });
}

void TapeDrive::write_object(NodeId node, std::uint64_t object_id,
                             std::uint64_t bytes, std::vector<sim::PathLeg> path,
                             std::function<void(const Segment*)> done) {
  enqueue([this, node, object_id, bytes, path = std::move(path),
           done = std::move(done)](std::function<void()> next) mutable {
    if (cartridge_ == nullptr || !cartridge_->fits(bytes)) {
      if (done) done(nullptr);
      next();
      return;
    }
    with_ownership(node, [this, object_id, bytes, path = std::move(path), done,
                          next]() mutable {
      // Position to end-of-data for the append.
      const std::uint64_t end = cartridge_->bytes_used();
      const sim::Tick seek = timings_.seek_time(position_, end);
      if (seek > 0) {
        ++stats_.seeks;
        stats_.seek_time += seek;
      }
      position_ = end;
      sim_.after(seek, [this, object_id, bytes, path = std::move(path), done,
                        next]() mutable {
        path.push_back(rate_pool_);
        const sim::Tick t0 = sim_.now();
        net_.start_flow(
            std::move(path), static_cast<double>(bytes),
            [this, object_id, bytes, t0, done, next](const sim::FlowStats&) {
              stats_.transfer_time += sim_.now() - t0;
              // Copy: the cartridge's segment vector may reallocate before
              // the backhitch completes.
              const Segment seg = cartridge_->append(object_id, bytes);
              position_ = seg.offset + seg.bytes;
              ++stats_.write_txns;
              stats_.bytes_written += bytes;
              // HSM semantics: one file, one transaction — the drive stops
              // after each object (Sec 6.1).
              ++stats_.backhitches;
              stats_.backhitch_time += timings_.backhitch;
              sim_.after(timings_.backhitch, [done, seg, next] {
                if (done) done(&seg);
                next();
              });
            });
      });
    });
  });
}

void TapeDrive::read_object(NodeId node, std::uint64_t seq,
                            std::vector<sim::PathLeg> path,
                            std::function<void(const Segment*)> done) {
  enqueue([this, node, seq, path = std::move(path),
           done = std::move(done)](std::function<void()> next) mutable {
    const Segment* seg = cartridge_ != nullptr && !cartridge_->damaged()
                             ? cartridge_->segment_by_seq(seq)
                             : nullptr;
    if (seg == nullptr) {
      if (done) done(nullptr);
      next();
      return;
    }
    with_ownership(node, [this, seg, path = std::move(path), done,
                          next]() mutable {
      sim::Tick pre = 0;
      if (position_ != seg->offset) {
        // Non-sequential access: locate plus a repositioning stop.
        const sim::Tick seek = timings_.seek_time(position_, seg->offset);
        ++stats_.seeks;
        stats_.seek_time += seek;
        ++stats_.backhitches;
        stats_.backhitch_time += timings_.backhitch;
        pre = seek + timings_.backhitch;
        position_ = seg->offset;
      }
      const Segment segv = *seg;  // copy against vector reallocation
      sim_.after(pre, [this, segv, path = std::move(path), done, next]() mutable {
        path.push_back(rate_pool_);
        const sim::Tick t0 = sim_.now();
        net_.start_flow(std::move(path), static_cast<double>(segv.bytes),
                        [this, segv, t0, done, next](const sim::FlowStats&) {
                          stats_.transfer_time += sim_.now() - t0;
                          position_ = segv.offset + segv.bytes;
                          ++stats_.read_txns;
                          stats_.bytes_read += segv.bytes;
                          if (done) done(&segv);
                          next();
                        });
      });
    });
  });
}

}  // namespace cpa::tape
