// A tape drive: a strictly serial device with expensive mechanical state.
//
// All operations queue FIFO on the drive and take virtual time per the
// TapeTimings model.  The drive tracks which cluster node currently owns
// the data path: in a LAN-free setup each node talks to the drive directly
// over the SAN, and when a mounted tape's I/O hops between nodes the drive
// must rewind and re-verify the volume label (the Sec 6.2 "massive
// performance hit even though the tape is not physically dismounted").
//
// Data transfers are flows through the shared FlowNetwork: callers supply
// the SAN/HBA pools on the path and the drive adds its own streaming-rate
// pool, so concurrent drives contend realistically for SAN bandwidth.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "simcore/flow_network.hpp"
#include "simcore/simulation.hpp"
#include "tape/cartridge.hpp"
#include "tape/timings.hpp"

namespace cpa::tape {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

struct DriveStats {
  std::uint64_t mounts = 0;
  std::uint64_t unmounts = 0;
  std::uint64_t label_verifies = 0;
  std::uint64_t handoffs = 0;       // ownership changes on a mounted tape
  std::uint64_t seeks = 0;
  std::uint64_t backhitches = 0;
  std::uint64_t write_txns = 0;
  std::uint64_t read_txns = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  sim::Tick mount_time = 0;
  sim::Tick seek_time = 0;
  sim::Tick backhitch_time = 0;
  sim::Tick transfer_time = 0;
};

class TapeDrive {
 public:
  TapeDrive(sim::Simulation& sim, sim::FlowNetwork& net, std::string name,
            TapeTimings timings);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const TapeTimings& timings() const { return timings_; }
  [[nodiscard]] sim::PoolId rate_pool() const { return rate_pool_; }
  [[nodiscard]] Cartridge* mounted() const { return cartridge_; }
  [[nodiscard]] bool busy() const { return busy_ || !ops_.empty(); }
  [[nodiscard]] const DriveStats& stats() const { return stats_; }

  /// Routes spans and tape.* metrics to `obs` (all drives share the same
  /// counters; each drive traces onto its own named track).
  void set_observer(obs::Observer& obs);

  /// Marks the drive failed / repaired.  Failing a drive aborts any
  /// in-flight data transfer (its completion sees nullptr) and makes
  /// queued/new read and write ops fail fast.  Mechanical mount/unmount
  /// still works, so the library can recover the stuck cartridge.
  void set_failed(bool failed);
  [[nodiscard]] bool failed() const { return failed_; }

  /// Mounts a cartridge (load + label verify).  Drive must be empty when
  /// the operation runs.
  void mount(Cartridge* cartridge, std::function<void()> done);

  /// Rewinds and unloads the mounted cartridge.
  void unmount(std::function<void()> done);

  /// Appends an object to the mounted cartridge from `node`, streaming the
  /// bytes through `path` (SAN / HBA pools).  The per-transaction stop
  /// (backhitch) is charged afterwards.  Fails (done(nullptr)) if no
  /// cartridge is mounted or it cannot fit the object.  `parent` causally
  /// links the op (and its queue-wait/position sub-spans) under the
  /// caller's span for the critical-path profiler.
  void write_object(NodeId node, std::uint64_t object_id, std::uint64_t bytes,
                    std::vector<sim::PathLeg> path,
                    std::function<void(const Segment*)> done,
                    obs::SpanId parent = {});

  /// Reads the segment with sequence number `seq` from `node`.  Reading
  /// the physically next segment streams without a seek or backhitch;
  /// anything else pays a locate.  done(nullptr) when seq is absent.
  void read_object(NodeId node, std::uint64_t seq,
                   std::vector<sim::PathLeg> path,
                   std::function<void(const Segment*)> done,
                   obs::SpanId parent = {});

 private:
  void enqueue(std::function<void(std::function<void()>)> op);
  void run_next();
  /// Charges any owner-handoff penalty, then continues.
  void with_ownership(NodeId node, std::function<void()> then);
  /// Re-resolves the cached tape.* instruments against obs_'s registry.
  void cache_instruments();

  sim::Simulation& sim_;
  sim::FlowNetwork& net_;
  std::string name_;
  TapeTimings timings_;
  sim::PoolId rate_pool_;

  Cartridge* cartridge_ = nullptr;
  std::uint64_t position_ = 0;  // current head byte position
  NodeId owner_ = kNoNode;      // node owning the data path
  bool busy_ = false;
  bool failed_ = false;
  // Set while a data flow is in flight; fired by set_failed(true) to abort
  // the transfer and complete the op with nullptr.
  std::function<void()> interrupt_;
  std::deque<std::function<void(std::function<void()>)>> ops_;
  DriveStats stats_;

  obs::Observer* obs_ = &obs::Observer::nil();
  // Cached so hot-path updates never look names up.
  obs::Counter* c_mounts_ = nullptr;
  obs::Counter* c_unmounts_ = nullptr;
  obs::Counter* c_handoffs_ = nullptr;
  obs::Counter* c_seeks_ = nullptr;
  obs::Counter* c_backhitches_ = nullptr;
  obs::Counter* c_write_txns_ = nullptr;
  obs::Counter* c_read_txns_ = nullptr;
  obs::Counter* c_bytes_written_ = nullptr;
  obs::Counter* c_bytes_read_ = nullptr;
  obs::Gauge* g_mount_seconds_ = nullptr;
  obs::Gauge* g_seek_seconds_ = nullptr;
  obs::Gauge* g_backhitch_seconds_ = nullptr;
};

}  // namespace cpa::tape
