#include "tape/cartridge.hpp"

#include <cassert>

namespace cpa::tape {

const Segment& Cartridge::append(std::uint64_t object_id, std::uint64_t bytes) {
  assert(fits(bytes));
  Segment s;
  s.object_id = object_id;
  s.seq = next_seq_++;
  s.offset = used_;
  s.bytes = bytes;
  used_ += bytes;
  segments_.push_back(s);
  return segments_.back();
}

const Segment* Cartridge::segment_by_seq(std::uint64_t seq) const {
  if (seq == 0 || seq > segments_.size()) return nullptr;
  const Segment& s = segments_[seq - 1];
  return s.object_id == 0 ? nullptr : &s;  // deleted
}

const Segment* Cartridge::segment_by_object(std::uint64_t object_id) const {
  for (const Segment& s : segments_) {
    if (s.object_id == object_id) return &s;
  }
  return nullptr;
}

bool Cartridge::mark_deleted(std::uint64_t object_id) {
  for (Segment& s : segments_) {
    if (s.object_id == object_id) {
      s.object_id = 0;
      dead_bytes_ += s.bytes;
      return true;
    }
  }
  return false;
}

}  // namespace cpa::tape
