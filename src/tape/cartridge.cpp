#include "tape/cartridge.hpp"

#include <cassert>

#include "simcore/rng.hpp"

namespace cpa::tape {

const Segment& Cartridge::append(std::uint64_t object_id, std::uint64_t bytes) {
  assert(fits(bytes));
  Segment s;
  s.object_id = object_id;
  s.seq = next_seq_++;
  s.offset = used_;
  s.bytes = bytes;
  used_ += bytes;
  segments_.push_back(s);
  return segments_.back();
}

const Segment* Cartridge::segment_by_seq(std::uint64_t seq) const {
  if (seq == 0 || seq > segments_.size()) return nullptr;
  const Segment& s = segments_[seq - 1];
  return s.object_id == 0 ? nullptr : &s;  // deleted
}

const Segment* Cartridge::segment_by_object(std::uint64_t object_id) const {
  for (const Segment& s : segments_) {
    if (s.object_id == object_id) return &s;
  }
  return nullptr;
}

bool Cartridge::set_fingerprint(std::uint64_t seq, std::uint64_t fingerprint) {
  if (seq == 0 || seq > segments_.size()) return false;
  segments_[seq - 1].fingerprint = fingerprint;
  return true;
}

std::uint64_t Cartridge::corrupt_random_segments(std::uint64_t count,
                                                 std::uint64_t seed) {
  // Candidates: live (not deleted), not already corrupted.  The pick is a
  // seeded partial Fisher-Yates over the candidate index list, so the same
  // (cartridge state, count, seed) always rots the same segments.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].object_id != 0 && !segments_[i].corrupted) {
      candidates.push_back(i);
    }
  }
  sim::Rng rng(seed ^ (id_ * 0x9E3779B97F4A7C15ULL) ^ 0xB17F1A7ULL);
  std::uint64_t hit = 0;
  for (std::uint64_t n = 0; n < count && !candidates.empty(); ++n) {
    const std::uint64_t pick = rng.uniform_u64(0, candidates.size() - 1);
    segments_[candidates[pick]].corrupted = true;
    candidates[pick] = candidates.back();
    candidates.pop_back();
    ++hit;
  }
  return hit;
}

bool Cartridge::clear_corruption(std::uint64_t seq) {
  if (seq == 0 || seq > segments_.size()) return false;
  segments_[seq - 1].corrupted = false;
  return true;
}

std::uint64_t Cartridge::corrupted_segment_count() const {
  std::uint64_t n = 0;
  for (const Segment& s : segments_) {
    if (s.object_id != 0 && s.corrupted) ++n;
  }
  return n;
}

bool Cartridge::mark_deleted(std::uint64_t object_id) {
  for (Segment& s : segments_) {
    if (s.object_id == object_id) {
      s.object_id = 0;
      dead_bytes_ += s.bytes;
      return true;
    }
  }
  return false;
}

}  // namespace cpa::tape
