// The automated tape library: drives, a robot arm, and a cartridge pool.
//
// Matches the paper's plant: "twenty-four LTO-4 tape drives connected to
// the SAN" (Sec 4.3.1).  The library hands out idle drives FIFO, serializes
// robot motion for mounts/unmounts, and manages scratch cartridges with
// TSM-style co-location groups (Sec 4.1: "ILM stgpool and co-location
// features in the archive back-end") so one group's objects cluster on few
// cartridges.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sched/qos.hpp"
#include "simcore/resource.hpp"
#include "tape/drive.hpp"

namespace cpa::tape {

struct LibraryConfig {
  unsigned drive_count = 24;
  std::uint64_t cartridge_capacity = 800ULL * kGB;  // LTO-4 native
  TapeTimings timings;
};

/// Who is asking for a drive, and how urgently.  The library stamps
/// `enqueued`/`seq` at acquire time; callers fill tenant and class.  The
/// default (empty tenant, Interactive) marks unmanaged internal work.
struct DriveRequest {
  std::string tenant;
  sched::QosClass qos = sched::QosClass::Interactive;
  sim::Tick enqueued = 0;   // stamped by the library at acquire time
  std::uint64_t seq = 0;    // library-wide arrival order (stamped)
};

/// Pluggable drive-grant policy.  Without one the library is plain FIFO
/// (the pre-scheduler behaviour, bit-for-bit).  The admission scheduler
/// implements this to enforce per-tenant drive quotas and to let
/// Interactive recalls overtake queued Bulk batches at batch boundaries.
class DriveArbiter {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  virtual ~DriveArbiter() = default;
  /// May this request take an idle drive right now (quota check)?
  virtual bool may_hold(const DriveRequest& req) = 0;
  /// Which waiter gets the next free drive; kNone leaves it idle (every
  /// waiter is over its quota).  `waiters` is in FIFO order.
  virtual std::size_t pick_waiter(const std::vector<DriveRequest>& waiters) = 0;
  virtual void drive_granted(const DriveRequest& req) = 0;
  virtual void drive_released(const DriveRequest& req) = 0;
};

class TapeLibrary {
 public:
  TapeLibrary(sim::Simulation& sim, sim::FlowNetwork& net, LibraryConfig cfg);

  [[nodiscard]] const LibraryConfig& config() const { return cfg_; }
  [[nodiscard]] unsigned drive_count() const { return static_cast<unsigned>(drives_.size()); }
  [[nodiscard]] TapeDrive& drive(unsigned i) { return *drives_[i]; }

  // --- drive allocation ----------------------------------------------------
  /// Grants an idle drive (FIFO, or per the arbiter); the callback
  /// receives the drive.  The unclassified overload is equivalent to an
  /// unmanaged DriveRequest.
  void acquire_drive(std::function<void(TapeDrive&)> on_grant);
  void acquire_drive(DriveRequest req, std::function<void(TapeDrive&)> on_grant);
  void release_drive(TapeDrive& drive);
  [[nodiscard]] unsigned idle_drives() const;
  [[nodiscard]] std::size_t drive_waiters() const { return drive_waiters_.size(); }
  /// Installs (or clears, with nullptr) the drive-grant policy.  The
  /// arbiter must outlive the library or be cleared before destruction.
  void set_arbiter(DriveArbiter* arbiter) { arbiter_ = arbiter; }

  // --- fault injection -------------------------------------------------------
  /// Fails drive `i`: aborts its in-flight transfer (see
  /// TapeDrive::set_failed) and takes it out of the allocation rotation.
  /// The current holder keeps the drive until it release_drive()s.
  void fail_drive(unsigned i);
  /// Repairs drive `i`; if it is idle a queued waiter gets it at once.
  void repair_drive(unsigned i);
  [[nodiscard]] bool drive_failed(unsigned i) const {
    return drives_[i]->failed();
  }

  /// Whole-library power loss: every healthy drive drops its in-flight
  /// transfer (set_failed), queued waiters/claims/holders/checkouts are
  /// wiped (their owners died with the host), and per-holder arbiter
  /// releases keep quota accounting balanced.  Cartridge contents and
  /// mounted volumes survive — tape is physical.  power_restore() repairs
  /// exactly the drives this call failed, so a fault-plan drive failure
  /// that was already open stays failed across the crash.
  void power_fail();
  void power_restore();

  // --- cartridges ------------------------------------------------------------
  Cartridge& new_cartridge(const std::string& colocation_group = "");
  [[nodiscard]] Cartridge* cartridge(CartridgeId id);
  /// The open append-target cartridge for a co-location group with at
  /// least `bytes` free; allocates a fresh scratch cartridge if needed.
  Cartridge& open_cartridge_for(const std::string& group, std::uint64_t bytes);
  [[nodiscard]] std::size_t cartridge_count() const { return cartridges_.size(); }

  /// Visits every cartridge (ascending id).
  void for_each_cartridge(const std::function<void(Cartridge&)>& fn) {
    for (auto& [id, cart] : cartridges_) fn(*cart);
  }

  /// Checks out a cartridge of `group` with at least `bytes` free for
  /// exclusive append access (one writer per volume, as TSM enforces).
  /// Prefers partially filled volumes; allocates scratch when none fit.
  /// `exclude` skips one volume (reclamation must not pick its source).
  Cartridge& checkout_cartridge(const std::string& group, std::uint64_t bytes,
                                CartridgeId exclude = 0);
  void checkin_cartridge(Cartridge& cart);
  [[nodiscard]] bool is_checked_out(CartridgeId id) const {
    return checked_out_.count(id) != 0;
  }

  // --- robot-mediated mount management ---------------------------------------
  /// Ensures `drive` has `cart` mounted, unmounting any other cartridge
  /// first.  Robot motions serialize across the library.
  void ensure_mounted(TapeDrive& drive, Cartridge& cart, std::function<void()> done);
  /// Unmounts whatever the drive holds (no-op when empty).
  void dismount(TapeDrive& drive, std::function<void()> done);
  /// True while another *acquired* drive has claimed `cart` through
  /// ensure_mounted(): its batch still needs the volume even when the
  /// drive idles between reads.  Claims die with release_drive(), so a
  /// volume left mounted in a released drive is fair game.
  [[nodiscard]] bool volume_claimed_elsewhere(const Cartridge& cart,
                                              const TapeDrive& self) const;
  /// Drops `drive`'s claim so a waiting peer may take the volume.  Used
  /// by background scans that yield to foreground batches; the claim is
  /// re-established by the next ensure_mounted() on the drive.
  void relinquish_claim(const TapeDrive& drive);

  /// Sums stats over all drives.
  [[nodiscard]] DriveStats aggregate_stats() const;

  /// Propagates the observer to every drive.
  void set_observer(obs::Observer& obs) {
    for (auto& d : drives_) d->set_observer(obs);
  }

 private:
  sim::Simulation& sim_;
  LibraryConfig cfg_;
  /// True when `cart` may not be moved into `into` right now: it sits in
  /// a drive that is mid-operation, or an acquired drive still claims it.
  [[nodiscard]] bool mount_conflict(const Cartridge& cart,
                                    const TapeDrive& into) const;
  void set_claim(const TapeDrive& drive, CartridgeId cart);

  struct Waiter {
    DriveRequest req;
    std::function<void(TapeDrive&)> fn;
  };
  /// Marks drive `i` busy for `w` and delivers it through the event queue.
  void grant(std::size_t i, Waiter w);
  /// Hands idle drives to waiters until either runs out (or the arbiter
  /// declines every waiter).  Called after any release/repair.
  void pump_idle_drives();

  std::vector<std::unique_ptr<TapeDrive>> drives_;
  std::vector<bool> drive_busy_;
  std::vector<CartridgeId> drive_claim_;  // 0: none; parallel to drives_
  std::vector<DriveRequest> drive_holder_;  // who holds it; parallel to drives_
  std::deque<Waiter> drive_waiters_;
  DriveArbiter* arbiter_ = nullptr;
  std::uint64_t next_request_seq_ = 0;
  sim::Resource robot_;
  std::map<CartridgeId, std::unique_ptr<Cartridge>> cartridges_;
  std::map<std::string, CartridgeId> open_by_group_;
  std::set<CartridgeId> checked_out_;
  CartridgeId next_cartridge_id_ = 1;
  std::vector<unsigned> power_failed_drives_;  // repaired by power_restore()
};

}  // namespace cpa::tape
