// Mechanical timing model for LTO-class tape drives.
//
// Every operational lesson in the paper's Sec 6 is a consequence of tape
// timing physics, so these are first-class, benchmark-sweepable parameters:
//   * streaming rate: "100 MB/s, the rated performance of LTO-4 tapes";
//   * backhitch: the drive stops after every HSM transaction ("one file is
//     one transaction ... the tape drive stops writing after each file"),
//     costing a stop/reposition/start cycle.  The default is calibrated so
//     migrating 8 MB files yields ~4 MB/s, the paper's measured number;
//   * label verify: charged when a mounted tape changes owning machine in
//     a LAN-free cluster ("the tape to rewind and verify its label every
//     time the tape is passed between machines", Sec 6.2);
//   * locate/seek: linear in byte distance, plus a fixed head-settle cost.
#pragma once

#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace cpa::tape {

struct TapeTimings {
  /// Robot pick + load + thread, to ready (per mount).
  sim::Tick load = sim::secs(45);
  /// Unthread + robot return (per unmount).
  sim::Tick unload = sim::secs(30);
  /// Reading the volume label after a mount or an ownership handoff.
  sim::Tick label_verify = sim::secs(20);
  /// Fixed component of any locate operation.
  sim::Tick seek_base = sim::secs(6);
  /// Linear locate cost per GB of byte-distance travelled.
  double seek_secs_per_gb = 0.070;  // ~56 s full pass over an 800 GB tape
  /// Sustained streaming transfer rate.
  double stream_rate_bps = 100.0 * static_cast<double>(kMB);
  /// Stop/reposition/start penalty charged after each write transaction
  /// and each non-adjacent read.
  sim::Tick backhitch = sim::secs(1.92);

  [[nodiscard]] sim::Tick seek_time(std::uint64_t from_byte,
                                    std::uint64_t to_byte) const {
    if (from_byte == to_byte) return 0;
    const double dist_gb =
        (from_byte > to_byte ? from_byte - to_byte : to_byte - from_byte) /
        static_cast<double>(kGB);
    return seek_base + sim::secs(dist_gb * seek_secs_per_gb);
  }

  [[nodiscard]] sim::Tick rewind_time(std::uint64_t from_byte) const {
    return seek_time(from_byte, 0);
  }
};

}  // namespace cpa::tape
