// A tape cartridge: an append-only sequence of data segments.
//
// Objects land on tape in strictly increasing sequence numbers; the
// sequence number is what the TSM export (metadb) records and what
// PFTool's tape-ordered recall sorts by (Sec 4.2.5).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cpa::tape {

using CartridgeId = std::uint64_t;

struct Segment {
  std::uint64_t object_id = 0;
  std::uint64_t seq = 0;         // 1-based position on this cartridge
  std::uint64_t offset = 0;      // starting byte on tape
  std::uint64_t bytes = 0;
  std::uint64_t fingerprint = 0;  // fixity checksum written with the data
  bool corrupted = false;         // silent bit-rot: reads succeed, fixity fails

  /// What a verifying reader recomputes from the bits on tape.  A healthy
  /// segment yields the fingerprint that was written; a silently corrupted
  /// one yields something else (deterministically, so replays agree).
  [[nodiscard]] std::uint64_t observed_fingerprint() const {
    return corrupted ? ~fingerprint : fingerprint;
  }
};

class Cartridge {
 public:
  Cartridge(CartridgeId id, std::uint64_t capacity_bytes,
            std::string colocation_group = "")
      : id_(id), capacity_(capacity_bytes), group_(std::move(colocation_group)) {}

  [[nodiscard]] CartridgeId id() const { return id_; }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t bytes_used() const { return used_; }
  [[nodiscard]] std::uint64_t bytes_free() const { return capacity_ - used_; }
  [[nodiscard]] const std::string& colocation_group() const { return group_; }
  [[nodiscard]] std::uint64_t segment_count() const { return segments_.size(); }
  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }

  [[nodiscard]] bool fits(std::uint64_t bytes) const { return used_ + bytes <= capacity_; }

  /// Appends an object; returns the new segment (seq assigned).  The
  /// caller must have checked `fits`.
  const Segment& append(std::uint64_t object_id, std::uint64_t bytes);

  /// Finds a segment by sequence number (1-based).
  [[nodiscard]] const Segment* segment_by_seq(std::uint64_t seq) const;
  [[nodiscard]] const Segment* segment_by_object(std::uint64_t object_id) const;

  /// Marks a segment's object as deleted.  Tape is append-only, so the
  /// bytes are not reclaimed — the segment becomes a dead region, exactly
  /// like an orphan awaiting reclamation.
  bool mark_deleted(std::uint64_t object_id);
  [[nodiscard]] std::uint64_t dead_bytes() const { return dead_bytes_; }

  /// Media failure injection: a damaged volume cannot be read; recalls
  /// must fall back to copy-pool replicas.
  void set_damaged(bool damaged) { damaged_ = damaged; }
  [[nodiscard]] bool damaged() const { return damaged_; }

  /// Records the fixity checksum written alongside a segment's data.  The
  /// drive hands completion callbacks a *copy* of the segment, so writers
  /// attach the fingerprint through the cartridge by sequence number.
  bool set_fingerprint(std::uint64_t seq, std::uint64_t fingerprint);

  /// Silent bit-rot injection: flips up to `count` distinct live segments
  /// into the corrupted state.  Deterministic in `seed` so a fault plan
  /// replays bit-identically.  Returns how many segments were corrupted.
  std::uint64_t corrupt_random_segments(std::uint64_t count,
                                        std::uint64_t seed);

  /// Clears the corrupted flag (segment rewritten / repaired in place).
  bool clear_corruption(std::uint64_t seq);
  [[nodiscard]] std::uint64_t corrupted_segment_count() const;

 private:
  CartridgeId id_;
  std::uint64_t capacity_;
  std::string group_;
  std::uint64_t used_ = 0;
  std::uint64_t dead_bytes_ = 0;
  bool damaged_ = false;
  std::uint64_t next_seq_ = 1;
  std::vector<Segment> segments_;
};

}  // namespace cpa::tape
