#include "tape/library.hpp"

#include <cassert>

namespace cpa::tape {

TapeLibrary::TapeLibrary(sim::Simulation& sim, sim::FlowNetwork& net,
                         LibraryConfig cfg)
    : sim_(sim), cfg_(cfg), robot_(sim, "robot", 1) {
  assert(cfg_.drive_count > 0);
  for (unsigned i = 0; i < cfg_.drive_count; ++i) {
    drives_.push_back(std::make_unique<TapeDrive>(
        sim, net, "drive" + std::to_string(i), cfg_.timings));
    drive_busy_.push_back(false);
    drive_claim_.push_back(0);
    drive_holder_.push_back(DriveRequest{});
  }
}

void TapeLibrary::fail_drive(unsigned i) {
  assert(i < drives_.size());
  drives_[i]->set_failed(true);
}

void TapeLibrary::repair_drive(unsigned i) {
  assert(i < drives_.size());
  drives_[i]->set_failed(false);
  // The drive is usable again: hand it to a waiter if idle.
  pump_idle_drives();
}

void TapeLibrary::power_fail() {
  power_failed_drives_.clear();
  for (unsigned i = 0; i < drives_.size(); ++i) {
    if (!drives_[i]->failed()) {
      // set_failed aborts the in-flight flow and fails queued ops fast
      // into continuations the crash has already declared dead.
      drives_[i]->set_failed(true);
      power_failed_drives_.push_back(i);
    }
    if (drive_busy_[i]) {
      // The holder died with the host and will never release_drive().
      if (arbiter_ != nullptr) arbiter_->drive_released(drive_holder_[i]);
      drive_busy_[i] = false;
    }
    drive_claim_[i] = 0;
    drive_holder_[i] = DriveRequest{};
  }
  drive_waiters_.clear();
  checked_out_.clear();
}

void TapeLibrary::power_restore() {
  for (const unsigned i : power_failed_drives_) drives_[i]->set_failed(false);
  power_failed_drives_.clear();
  pump_idle_drives();
}

void TapeLibrary::grant(std::size_t i, Waiter w) {
  drive_busy_[i] = true;
  drive_holder_[i] = w.req;
  if (arbiter_ != nullptr) arbiter_->drive_granted(w.req);
  TapeDrive* d = drives_[i].get();
  sim_.after(0, [fn = std::move(w.fn), d] { fn(*d); });
}

void TapeLibrary::pump_idle_drives() {
  for (std::size_t i = 0; i < drives_.size() && !drive_waiters_.empty(); ++i) {
    if (drive_busy_[i] || drives_[i]->failed()) continue;
    std::size_t pick = 0;
    if (arbiter_ != nullptr) {
      std::vector<DriveRequest> reqs;
      reqs.reserve(drive_waiters_.size());
      for (const Waiter& w : drive_waiters_) reqs.push_back(w.req);
      pick = arbiter_->pick_waiter(reqs);
      // Every waiter is over quota: drives stay idle until a release
      // frees headroom (quotas only shrink holdings on release).
      if (pick == DriveArbiter::kNone) return;
      assert(pick < drive_waiters_.size());
    }
    Waiter w = std::move(drive_waiters_[pick]);
    drive_waiters_.erase(drive_waiters_.begin() +
                         static_cast<std::ptrdiff_t>(pick));
    grant(i, std::move(w));
  }
}

void TapeLibrary::acquire_drive(std::function<void(TapeDrive&)> on_grant) {
  acquire_drive(DriveRequest{}, std::move(on_grant));
}

void TapeLibrary::acquire_drive(DriveRequest req,
                                std::function<void(TapeDrive&)> on_grant) {
  req.enqueued = sim_.now();
  req.seq = next_request_seq_++;
  for (std::size_t i = 0; i < drives_.size(); ++i) {
    if (drive_busy_[i] || drives_[i]->failed()) continue;
    if (arbiter_ != nullptr && !arbiter_->may_hold(req)) break;  // over quota
    grant(i, Waiter{std::move(req), std::move(on_grant)});
    return;
  }
  drive_waiters_.push_back(Waiter{std::move(req), std::move(on_grant)});
}

void TapeLibrary::release_drive(TapeDrive& drive) {
  for (std::size_t i = 0; i < drives_.size(); ++i) {
    if (drives_[i].get() == &drive) {
      assert(drive_busy_[i]);
      drive_claim_[i] = 0;  // the departing batch no longer needs a volume
      drive_busy_[i] = false;
      if (arbiter_ != nullptr) arbiter_->drive_released(drive_holder_[i]);
      drive_holder_[i] = DriveRequest{};
      // A failed drive must not be handed to a waiter; it re-enters the
      // rotation via repair_drive().  pump skips it.
      pump_idle_drives();
      return;
    }
  }
  assert(false && "release of a drive not in this library");
}

unsigned TapeLibrary::idle_drives() const {
  unsigned n = 0;
  for (std::size_t i = 0; i < drive_busy_.size(); ++i) {
    if (!drive_busy_[i] && !drives_[i]->failed()) ++n;
  }
  return n;
}

Cartridge& TapeLibrary::new_cartridge(const std::string& group) {
  const CartridgeId id = next_cartridge_id_++;
  auto cart = std::make_unique<Cartridge>(id, cfg_.cartridge_capacity, group);
  Cartridge& ref = *cart;
  cartridges_.emplace(id, std::move(cart));
  return ref;
}

Cartridge* TapeLibrary::cartridge(CartridgeId id) {
  auto it = cartridges_.find(id);
  return it == cartridges_.end() ? nullptr : it->second.get();
}

Cartridge& TapeLibrary::open_cartridge_for(const std::string& group,
                                           std::uint64_t bytes) {
  auto it = open_by_group_.find(group);
  if (it != open_by_group_.end()) {
    Cartridge* cart = cartridge(it->second);
    if (cart != nullptr && cart->fits(bytes)) return *cart;
  }
  Cartridge& fresh = new_cartridge(group);
  open_by_group_[group] = fresh.id();
  return fresh;
}

Cartridge& TapeLibrary::checkout_cartridge(const std::string& group,
                                           std::uint64_t bytes,
                                           CartridgeId exclude) {
  for (auto& [id, cart] : cartridges_) {
    if (id == exclude) continue;
    if (checked_out_.count(id) != 0) continue;
    if (cart->colocation_group() != group) continue;
    if (!cart->fits(bytes)) continue;
    // Oldest id first: keeps appends clustered on partially filled volumes
    // so co-location actually groups data.
    checked_out_.insert(id);
    return *cart;
  }
  Cartridge& fresh = new_cartridge(group);
  checked_out_.insert(fresh.id());
  return fresh;
}

void TapeLibrary::checkin_cartridge(Cartridge& cart) {
  checked_out_.erase(cart.id());
}

bool TapeLibrary::volume_claimed_elsewhere(const Cartridge& cart,
                                           const TapeDrive& self) const {
  for (std::size_t i = 0; i < drives_.size(); ++i) {
    if (drives_[i].get() == &self) continue;
    if (drive_busy_[i] && drive_claim_[i] == cart.id()) return true;
  }
  return false;
}

void TapeLibrary::relinquish_claim(const TapeDrive& drive) {
  for (std::size_t i = 0; i < drives_.size(); ++i) {
    if (drives_[i].get() == &drive) {
      drive_claim_[i] = 0;
      return;
    }
  }
}

void TapeLibrary::set_claim(const TapeDrive& drive, CartridgeId cart) {
  for (std::size_t i = 0; i < drives_.size(); ++i) {
    if (drives_[i].get() == &drive) {
      drive_claim_[i] = cart;
      return;
    }
  }
}

bool TapeLibrary::mount_conflict(const Cartridge& cart,
                                 const TapeDrive& into) const {
  for (std::size_t i = 0; i < drives_.size(); ++i) {
    const TapeDrive* d = drives_[i].get();
    if (d == &into || d->mounted() != &cart) continue;
    // Mid-operation: yanking the volume would corrupt the holder's stream.
    if (d->busy()) return true;
    // Idle but its batch still wants the volume (claims expire on
    // release_drive or when the holder claims a different cartridge).
    if (drive_busy_[i] && drive_claim_[i] == cart.id()) return true;
  }
  return false;
}

void TapeLibrary::ensure_mounted(TapeDrive& drive, Cartridge& cart,
                                 std::function<void()> done) {
  if (!done) done = [] {};
  // Record intent first: this drive's batch now needs `cart`, and any
  // earlier claim by the same drive is stale.
  set_claim(drive, cart.id());
  if (drive.mounted() == &cart) {
    sim_.after(0, std::move(done));
    return;
  }
  // A volume is physically in one place: while its current holder is
  // working or still claims it, wait rather than steal.
  if (mount_conflict(cart, drive)) {
    sim_.after(sim::secs(5), [this, &drive, &cart, done = std::move(done)]() mutable {
      ensure_mounted(drive, cart, std::move(done));
    });
    return;
  }
  // Robot serializes the physical exchange.
  robot_.acquire([this, &drive, &cart, done = std::move(done)]() mutable {
    // The world may have changed while the robot was busy elsewhere:
    // re-check before touching the holder's drive.
    if (mount_conflict(cart, drive)) {
      robot_.release();
      sim_.after(sim::secs(5), [this, &drive, &cart, done = std::move(done)]() mutable {
        ensure_mounted(drive, cart, std::move(done));
      });
      return;
    }
    auto do_mount = [this, &drive, &cart, done = std::move(done)]() mutable {
      drive.mount(&cart, [this, done = std::move(done)] {
        robot_.release();
        done();
      });
    };
    // If the volume idles in some other drive (left mounted after a prior
    // batch), pull it from there first.
    TapeDrive* holder = nullptr;
    for (auto& d : drives_) {
      if (d->mounted() == &cart && d.get() != &drive) {
        holder = d.get();
        break;
      }
    }
    auto clear_own = [this, &drive, do_mount = std::move(do_mount)]() mutable {
      if (drive.mounted() != nullptr) {
        drive.unmount([do_mount = std::move(do_mount)]() mutable { do_mount(); });
      } else {
        do_mount();
      }
    };
    if (holder != nullptr) {
      holder->unmount([clear_own = std::move(clear_own)]() mutable { clear_own(); });
    } else {
      clear_own();
    }
  });
}

void TapeLibrary::dismount(TapeDrive& drive, std::function<void()> done) {
  if (!done) done = [] {};
  if (drive.mounted() == nullptr) {
    sim_.after(0, std::move(done));
    return;
  }
  robot_.acquire([this, &drive, done = std::move(done)]() mutable {
    drive.unmount([this, done = std::move(done)] {
      robot_.release();
      done();
    });
  });
}

DriveStats TapeLibrary::aggregate_stats() const {
  DriveStats total;
  for (const auto& d : drives_) {
    const DriveStats& s = d->stats();
    total.mounts += s.mounts;
    total.unmounts += s.unmounts;
    total.label_verifies += s.label_verifies;
    total.handoffs += s.handoffs;
    total.seeks += s.seeks;
    total.backhitches += s.backhitches;
    total.write_txns += s.write_txns;
    total.read_txns += s.read_txns;
    total.bytes_written += s.bytes_written;
    total.bytes_read += s.bytes_read;
    total.mount_time += s.mount_time;
    total.seek_time += s.seek_time;
    total.backhitch_time += s.backhitch_time;
    total.transfer_time += s.transfer_time;
  }
  return total;
}

}  // namespace cpa::tape
