// The hierarchical storage manager: migration, recall, reconciliation.
//
// This is the glue the paper builds between the archive parallel file
// system (pfs) and the tape back end (tape), standing in for TSM HSM:
//
//   * migration batches (one drive, one mounted volume, many objects) with
//     optional small-file aggregation (Sec 6.1's fix);
//   * the Parallel Data Migrator (Sec 4.2.4): candidate lists distributed
//     across mover nodes either naively (GPFS policy engine behaviour) or
//     size-balanced (the paper's fix);
//   * recall with pluggable node assignment: per-file round-robin (stock
//     HSM recall daemons — causes the Sec 6.2 tape handoff thrashing) or
//     tape-affinity (the paper's proposed fix), and optional tape-order
//     sorting (Sec 4.2.5);
//   * LAN-free vs server-routed data paths (Sec 4.2.2 / Figs 5-6);
//   * the reconcile agent and the synchronous deleter it obsoletes
//     (Sec 4.2.6).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "hsm/fabric.hpp"
#include "integrity/fixity.hpp"
#include "integrity/scrubber.hpp"
#include "hsm/object.hpp"
#include "hsm/server.hpp"
#include "hsm/txn_batch.hpp"
#include "obs/observer.hpp"
#include "pfs/filesystem.hpp"
#include "sched/qos.hpp"
#include "simcore/units.hpp"
#include "tape/library.hpp"

namespace cpa::sched {
class AdmissionScheduler;
}

namespace cpa::hsm {

struct HsmConfig {
  /// LAN-free: clients stream straight to drives over the SAN.  Otherwise
  /// all data squeezes through the archive server's network connection.
  bool lan_free = true;
  /// Punch files to stubs once safely on tape (space management); when
  /// false files are left premigrated (pure backup semantics).
  bool punch_after_migrate = true;
  /// Bundle files below `aggregate_threshold` into aggregates of up to
  /// `aggregate_target` bytes before writing to tape.
  bool aggregation_enabled = false;
  std::uint64_t aggregate_threshold = 50 * kMB;
  std::uint64_t aggregate_target = 4 * kGB;
  /// Total tape copies of every object (1 = primary only).  Extra copies
  /// land in per-group copy pools ("<group>~copyN") on separate volumes;
  /// recall falls back to them when the primary volume is damaged.
  unsigned tape_copies = 1;
  unsigned server_count = 1;
  ServerConfig server;
  /// Recovery from injected faults: failed tape reads/writes caused by a
  /// drive failure, damaged media, or a server restart are retried with
  /// backoff, failing over to a healthy drive.  Permanent errors (object
  /// absent, oversized unit, ...) are never retried, so fault-free runs
  /// behave exactly as before.
  fault::RetryPolicy retry = fault::RetryPolicy::standard();
  /// Reconcile tree-walk cost per inode visited (Sec 4.2.6: the agent
  /// "does a directory tree-walk and compares each file one by one").
  sim::Tick reconcile_walk_cost = sim::msecs(2);
  /// Per-run salt folded into every fixity checksum: two archives of the
  /// same content under different salts disagree, so a stale checksum
  /// can never mask corruption.
  std::uint64_t content_salt = 0x5EEDULL;
};

struct MigrateReport {
  unsigned files_migrated = 0;
  unsigned files_failed = 0;
  std::uint64_t bytes = 0;
  unsigned tape_objects_written = 0;  // < files when aggregating
  unsigned checksums_computed = 0;    // fixity rows recorded (all copies)
  unsigned retries = 0;          // drive-failover / backoff retries
  unsigned units_requeued = 0;   // interrupted by a server restart
  sim::Tick started = 0;
  sim::Tick finished = 0;
  [[nodiscard]] double mean_rate_bps() const {
    const double dt = sim::to_seconds(finished - started);
    return dt > 0 ? static_cast<double>(bytes) / dt : 0.0;
  }
};

/// Recall tuning.  The defaults — documented here, in one place, and
/// asserted by tests — are the paper's recommended configuration: recalls
/// tape-ordered (Sec 4.2.5), tape-affinity node assignment (the Sec 6.2
/// fix), all work on node 0, no cap on concurrent cartridges, no caller
/// span (the recall is its own trace root), and unmanaged tenant/QoS
/// (no admission-scheduler accounting).  Refine with the fluent `with_*`
/// builders, mirroring SystemConfig/JobSpec.
struct RecallOptions {
  /// Sort each cartridge's recalls by tape sequence (PFTool's optimization).
  bool tape_ordered = true;
  enum class Assignment {
    TapeAffinity,  // all recalls for one tape handled by one node (fix)
    RoundRobin,    // per-file round-robin over nodes (stock HSM daemons)
  };
  Assignment assignment = Assignment::TapeAffinity;
  std::vector<tape::NodeId> nodes = {0};
  /// Cap on cartridges recalled concurrently (each needs a drive).
  unsigned max_parallel_tapes = 0xFFFFFFFFu;
  /// Caller's trace span (e.g. the pftool job): the recall's span is
  /// causally linked under it so per-job attribution crosses the HSM
  /// boundary.  Invalid (default) leaves the recall a DAG root.
  obs::SpanId parent_span{};
  /// Tenant/QoS this recall's drive requests are charged to; empty tenant
  /// bypasses quota accounting entirely.
  std::string tenant;
  sched::QosClass qos = sched::QosClass::Interactive;

  RecallOptions& with_tape_ordered(bool on = true) {
    tape_ordered = on;
    return *this;
  }
  RecallOptions& with_assignment(Assignment a) {
    assignment = a;
    return *this;
  }
  RecallOptions& with_nodes(std::vector<tape::NodeId> ns) {
    nodes = std::move(ns);
    return *this;
  }
  RecallOptions& with_max_parallel_tapes(unsigned n) {
    max_parallel_tapes = n;
    return *this;
  }
  RecallOptions& with_parent_span(obs::SpanId s) {
    parent_span = s;
    return *this;
  }
  RecallOptions& with_tenant(std::string name) {
    tenant = std::move(name);
    return *this;
  }
  RecallOptions& with_qos(sched::QosClass q) {
    qos = q;
    return *this;
  }
};

struct RecallReport {
  unsigned files_recalled = 0;
  unsigned files_failed = 0;
  /// Both the primary segment and every copy-pool duplicate failed fixity:
  /// a distinct, permanent verdict (also counted in files_failed) — never
  /// retried, because the reads themselves succeed.
  unsigned files_unrepairable = 0;
  unsigned fixity_verified = 0;    // recalls whose checksum matched
  unsigned fixity_mismatches = 0;  // failed compares (incl. bad fallbacks)
  unsigned retries = 0;  // drive-failover / media backoff retries
  std::uint64_t bytes = 0;          // logical file bytes recalled
  std::uint64_t tape_bytes = 0;     // tape bytes actually read (aggregates)
  sim::Tick started = 0;
  sim::Tick finished = 0;
  [[nodiscard]] double mean_rate_bps() const {
    const double dt = sim::to_seconds(finished - started);
    return dt > 0 ? static_cast<double>(bytes) / dt : 0.0;
  }
};

struct SpaceManagementReport {
  std::uint64_t files_punched = 0;
  std::uint64_t bytes_freed = 0;
  double used_fraction_before = 0.0;
  double used_fraction_after = 0.0;
  sim::Tick duration = 0;  // policy-scan time charged
};

struct ReclaimReport {
  unsigned volumes_examined = 0;
  unsigned volumes_reclaimed = 0;
  unsigned objects_moved = 0;
  std::uint64_t bytes_moved = 0;
  sim::Tick started = 0;
  sim::Tick finished = 0;
};

struct ReconcileReport {
  std::uint64_t inodes_walked = 0;
  std::uint64_t objects_checked = 0;
  std::uint64_t orphans_found = 0;
  std::uint64_t orphans_deleted = 0;
  sim::Tick duration = 0;
};

enum class DistributionStrategy {
  NaiveRoundRobin,  // GPFS policy-engine behaviour
  SizeBalanced,     // the paper's sorted, size-even distribution
};

class HsmSystem : public pfs::DmapiListener {
 public:
  HsmSystem(sim::Simulation& sim, sim::FlowNetwork& net, pfs::FileSystem& fs,
            tape::TapeLibrary& library, Fabric fabric, HsmConfig cfg);
  ~HsmSystem() override;

  [[nodiscard]] const HsmConfig& config() const { return cfg_; }
  [[nodiscard]] pfs::FileSystem& fs() { return fs_; }
  [[nodiscard]] tape::TapeLibrary& library() { return lib_; }

  /// The server responsible for a path (hash routing when server_count>1;
  /// the paper's "tether multiple archive file systems" idea, Sec 6.4).
  [[nodiscard]] ArchiveServer& server_for(const std::string& path);
  [[nodiscard]] unsigned server_count() const { return static_cast<unsigned>(servers_.size()); }
  [[nodiscard]] ArchiveServer& server(unsigned i) { return *servers_[i]; }

  /// The ambient batching session fronting `server`'s metadata path.
  /// Only meaningful when `config().server.batching()`; sessions are
  /// created lazily, live for the system's lifetime, and are abandoned
  /// (not destroyed) on power failure.
  [[nodiscard]] TxnSession& session_for(ArchiveServer& server);

  /// Migrates `paths` from node `node` on a single drive: mounts one
  /// volume of `group` and streams objects back to back.  `wc` charges the
  /// batch's drive holds and data flows to a tenant/QoS class (default:
  /// unmanaged).
  void migrate_batch(tape::NodeId node, std::vector<std::string> paths,
                     std::string group,
                     std::function<void(const MigrateReport&)> done,
                     sched::WorkClass wc = {});

  /// The Parallel Data Migrator: distributes `paths` across `nodes`
  /// (each node = one concurrent migrate_batch) per `strategy`.
  void parallel_migrate(std::vector<std::string> paths,
                        std::vector<tape::NodeId> nodes,
                        DistributionStrategy strategy, std::string group,
                        std::function<void(const MigrateReport&)> done,
                        sched::WorkClass wc = {});

  /// Recalls `paths` from tape into the archive file system.
  void recall(std::vector<std::string> paths, RecallOptions options,
              std::function<void(const RecallReport&)> done);

  /// Synchronous delete (Sec 4.2.6): joins the GPFS file id to the TSM
  /// object through the indexed export and deletes file-system entry and
  /// tape object together — no orphan, no reconcile needed.
  void synchronous_delete(const std::string& path,
                          std::function<void(pfs::Errc)> done);

  /// The classic reconcile agent: tree-walks the file system, compares
  /// every object one by one, and reports (optionally deletes) orphans.
  void reconcile(bool delete_orphans,
                 std::function<void(const ReconcileReport&)> done);

  /// HSM space management (threshold migration): when `pool`'s usage is
  /// at or above `high_water`, punch premigrated files — least recently
  /// accessed first — until usage drops to `low_water`.  Only files whose
  /// data is already safe on tape are eligible; the run costs one policy
  /// scan of the namespace.  This is how the archive operates with
  /// punch_after_migrate=false (premigrate-then-punch-on-demand).
  void space_management(const std::string& pool, double high_water,
                        double low_water,
                        std::function<void(const SpaceManagementReport&)> done);

  /// Tape scrubbing: walks the fixity table (tape order by default,
  /// reusing the Sec 4.2.5 optimization so scrub cost is mount/seek
  /// realistic), reads every segment back, verifies its checksum, and
  /// repairs mismatches — from a clean copy-pool duplicate, else by
  /// re-migrating still-resident/premigrated disk data, else reporting
  /// the object unrepairable exactly once.  Holds a single drive for the
  /// whole pass and paces itself to `rate_limit_bps`, so foreground
  /// recalls keep the remaining drives.
  void scrub(integrity::ScrubConfig scfg,
             std::function<void(const integrity::ScrubReport&)> done);

  /// The fixity table (checksums keyed by tape location).
  [[nodiscard]] integrity::FixityDb& fixity_db() { return fixity_; }
  [[nodiscard]] const integrity::FixityDb& fixity_db() const { return fixity_; }

  /// Space reclamation: volumes whose dead fraction is at least
  /// `dead_fraction` have their live segments copied tape-to-tape (two
  /// drives: source + destination in the same volume family) and every
  /// owning object's location updated; the drained volume becomes
  /// all-dead scratch.  Runs volumes sequentially on `node`.
  void reclaim_volumes(double dead_fraction, tape::NodeId node,
                       std::function<void(const ReclaimReport&)> done);

  // --- DmapiListener (events observed from the file system) ---------------
  void on_read_offline(const std::string& path, pfs::FileId fid) override;
  void on_managed_data_destroyed(const std::string& path, pfs::FileId fid) override;

  [[nodiscard]] std::uint64_t offline_read_events() const { return offline_reads_; }
  [[nodiscard]] std::uint64_t destroy_events() const { return destroys_; }

  /// Routes hsm.* metrics and migrate/recall/reclaim spans to `obs`.
  void set_observer(obs::Observer& obs) { obs_ = &obs; }

  /// Durability barrier invoked before any punch frees disk data: the
  /// continuation runs once every metadata record covering the punched
  /// files is durable (WAL group-commit fsync).  Unset (the default) the
  /// barrier is a synchronous passthrough — zero cost, identical timing.
  void set_durability_barrier(std::function<void(std::function<void()>)> b) {
    barrier_ = std::move(b);
  }

  /// Whole-archive power loss: every in-flight migrate/recall/reclaim/
  /// scrub/delete aborts (its `done` fires with the partial report, spans
  /// close), then volatile metadata — object catalogs, indexed exports,
  /// fixity rows — is wiped.  The tape library and the WAL are crashed
  /// separately by the caller, which owns the ordering.
  void power_fail();

  /// What crash reconciliation found and repaired (see reconcile_crash).
  struct CrashReconcileReport {
    /// Live tape segments no recovered catalog row points at: marked dead
    /// (reclamation fodder).  These were written after the last fsync.
    std::uint64_t orphan_segments = 0;
    /// Live segments whose object's recorded location is itself dead or
    /// missing (crash mid-relocation after the source was invalidated):
    /// the catalog is rolled forward to the surviving segment.
    std::uint64_t adopted_segments = 0;
    /// Fixity rows whose object vanished from the catalog: dropped.
    std::uint64_t orphan_fixity_rows = 0;
    /// Live catalog locations whose fixity row was torn away: rebuilt
    /// from the checksum the tape segment header carries.
    std::uint64_t fixity_rebuilt = 0;
    /// Objects resurrected by the tear whose file is provably gone (the
    /// unlink and tape reclaim are physical): the delete is rolled
    /// forward to completion.
    std::uint64_t deletes_completed = 0;
    /// Recorded tape locations whose segment is dead (crash mid-
    /// relocation): dropped, with a surviving copy promoted to primary.
    std::uint64_t locations_dropped = 0;
    /// Premigrated inodes with no catalog object: the migration never
    /// became durable, so the on-disk copy is authoritative again.
    std::uint64_t premigrated_remarked = 0;
    /// Migrated stubs with no catalog object: unreachable data.  The
    /// pre-punch durability barrier makes this impossible; nonzero here
    /// means the barrier was violated (chaos oracles assert zero).
    std::uint64_t stub_violations = 0;
  };

  /// Reconciles recovered metadata against physical reality (tape
  /// segments, disk residency states) after power_fail + WAL replay.
  /// Mutations go through the hooked store APIs, so they are themselves
  /// redo-logged for a repeat crash.
  CrashReconcileReport reconcile_crash();

  /// Hooks up the admission scheduler: migrate/recall data flows of a
  /// capped tenant pick up its bandwidth-shaper legs.  Drive-grant
  /// arbitration is wired separately (TapeLibrary::set_arbiter).
  void set_scheduler(sched::AdmissionScheduler* sched) { sched_ = sched; }

 private:
  struct MigrateJob;
  struct RecallJob;
  struct UnitRecorder;
  struct ReclaimJob;
  struct ScrubJob;

  /// Runs `k` behind the durability barrier (or synchronously when none).
  void barrier(std::function<void()> k) {
    if (barrier_) {
      barrier_(std::move(k));
    } else {
      k();
    }
  }

  /// Live-operation registry: every public entry point registers an abort
  /// closure; power_fail() fires them all.  Closures mark the job dead
  /// (every continuation re-entry checks the flag) and deliver the
  /// partial report so callers never hang on a crashed operation.
  std::uint64_t register_abort(std::function<void()> fn);
  void unregister_abort(std::uint64_t id);

  /// Fires `k` once every op submitted to any batching session so far has
  /// applied (and, with a WAL, become durable).  Passthrough when no
  /// session exists — i.e. whenever batching is off.
  void drain_sessions(std::function<void()> k);

  /// Erases one object from the catalog with full media/fixity cascade
  /// (aggregate-member aware).  Shared by synchronous_delete and the
  /// crash-recovery roll-forward of deletes that lost their ack.
  void delete_object_cascade(ArchiveServer& server, std::uint64_t object_id);

  void run_reclaim_volume(std::shared_ptr<ReclaimJob> job);
  void run_reclaim_segment(std::shared_ptr<ReclaimJob> job, std::size_t seg_idx);
  /// Finds the server holding `object_id` (ids are globally unique because
  /// each server hands out ids from its own counter but lookups scan all).
  ArchiveServer* find_object_server(std::uint64_t object_id);
  /// Updates the owner's recorded location after a segment moved from
  /// `old_cart` to (new_cart, new_seq), including members and export rows.
  void relocate_object(std::uint64_t object_id, std::uint64_t old_cart,
                       std::uint64_t new_cart, std::uint64_t new_seq);

  /// Folds a finished job's report into the hsm.* counters and closes its
  /// span.  Accounting happens per batch/job, so registry totals match the
  /// (combined) reports exactly.
  void account_migrate(const MigrateJob& job);
  void account_recall(const RecallJob& job);
  void account_reclaim(const ReclaimJob& job);
  void account_scrub(const ScrubJob& job);

  /// Records a retroactive wait span [since, now) linked under `parent` —
  /// used for drive-queue, mount and metadata-transaction waits.  No event
  /// when the wait was zero ticks (or tracing is off).
  void trace_wait(obs::Component comp, const char* name, obs::SpanId parent,
                  sim::Tick since);
  /// Records the upcoming retry-backoff window [now, now+delay) under
  /// `parent` so the profiler can attribute fault-handling latency.
  void trace_backoff(obs::SpanId parent, sim::Tick delay);

  void run_scrub_row(std::shared_ptr<ScrubJob> job);
  /// Tries repair sources in lattice order: each alternate tape location
  /// in `alts` (read + verify), then the disk-resident original, then
  /// declares the row unrepairable.
  void run_scrub_repair(
      std::shared_ptr<ScrubJob> job, const integrity::FixityRow& row,
      std::shared_ptr<std::vector<std::pair<std::uint64_t, std::uint64_t>>> alts,
      std::size_t alt_idx);
  /// Rewrites a corrupted segment from `pools` into a fresh volume of the
  /// bad cartridge's family and rebinds object + fixity rows to it.
  void write_scrub_repair(std::shared_ptr<ScrubJob> job,
                          const integrity::FixityRow& row,
                          std::uint64_t source_cartridge,
                          std::vector<sim::PathLeg> pools,
                          integrity::ScrubRepair::Action action);
  void scrub_unrepairable(std::shared_ptr<ScrubJob> job,
                          const integrity::FixityRow& row);
  /// Advances to the next fixity row, pausing to honor the scan-rate
  /// ceiling when `scanned_bytes` were just read.
  void scrub_pace(std::shared_ptr<ScrubJob> job, std::uint64_t scanned_bytes);
  void finish_scrub(std::shared_ptr<ScrubJob> job);

  /// Recall-verify fallback: re-reads the object from each untried tape
  /// location until one passes fixity, remounting the batch cartridge
  /// before the walk continues; exhausted -> files_unrepairable.
  void recall_fallback(
      std::shared_ptr<RecallJob> job, std::size_t work_idx,
      std::size_t entry_idx, tape::TapeDrive& drive,
      std::shared_ptr<std::vector<std::pair<std::uint64_t, std::uint64_t>>> alts,
      std::size_t alt_idx);

  void run_migrate_unit(std::shared_ptr<MigrateJob> job);
  /// Chains one metadata transaction per object in the just-written unit.
  void record_unit_objects(std::shared_ptr<MigrateJob> job,
                           std::shared_ptr<UnitRecorder> rec);
  /// Batched variant: builds every member object (and the aggregate) up
  /// front and submits them as one pipelined batch sequence; the file
  /// state transition joins on the whole unit being applied + durable.
  void record_unit_objects_batched(std::shared_ptr<MigrateJob> job,
                                   std::shared_ptr<UnitRecorder> rec);
  void finish_migrate(std::shared_ptr<MigrateJob> job);
  void run_recall_cart(std::shared_ptr<RecallJob> job, std::size_t work_idx);
  void run_recall_entry(std::shared_ptr<RecallJob> job, std::size_t work_idx,
                        std::size_t entry_idx, tape::TapeDrive& drive);
  /// Network-side legs only (SAN or LAN+server), no disk.
  [[nodiscard]] std::vector<sim::PathLeg> net_legs(tape::NodeId node,
                                                   const std::string& fs_path) const;
  /// The object owning a path's tape segment (the aggregate for members),
  /// or 0 when the path is not on tape.
  std::uint64_t owner_object_id(const std::string& path);
  [[nodiscard]] std::vector<sim::PathLeg> data_path(tape::NodeId node,
                                                   const std::string& fs_path,
                                                   std::uint64_t bytes) const;

  sim::Simulation& sim_;
  sim::FlowNetwork& net_;
  pfs::FileSystem& fs_;
  tape::TapeLibrary& lib_;
  Fabric fabric_;
  HsmConfig cfg_;
  std::vector<std::unique_ptr<ArchiveServer>> servers_;
  std::map<ArchiveServer*, std::unique_ptr<TxnSession>> sessions_;
  integrity::FixityDb fixity_;
  obs::Observer* obs_ = &obs::Observer::nil();
  sched::AdmissionScheduler* sched_ = nullptr;
  std::function<void(std::function<void()>)> barrier_;
  std::map<std::uint64_t, std::function<void()>> live_aborts_;
  std::uint64_t next_abort_id_ = 1;
  std::uint64_t offline_reads_ = 0;
  std::uint64_t destroys_ = 0;
};

}  // namespace cpa::hsm
