// Work distribution for the Parallel Data Migrator (Sec 4.2.4).
//
// "Although the GPFS policy engine supports parallel execution of
//  migration policies, the migration does not take into account load
//  balancing regarding file size ... One process may be responsible for
//  all of the large files in the list while another has nothing but small
//  files."  LANL's fix: "We combine, sort, and distribute the candidate
//  files by file size evenly across machines."
//
// `naive_distribute` reproduces the GPFS behaviour (round-robin in list
// order, size-blind).  `size_balanced_distribute` is the paper's fix,
// implemented as Longest-Processing-Time-first (sort descending, assign
// each item to the currently lightest bin), which carries the classic
// (4/3 - 1/3m)·OPT makespan bound.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

namespace cpa::hsm {

struct WorkItem {
  std::size_t index = 0;      // caller's identifier (position in input list)
  std::uint64_t weight = 0;   // bytes
};

using Distribution = std::vector<std::vector<WorkItem>>;  // one list per bin

/// Round-robin in input order, ignoring size — the GPFS policy-engine
/// behaviour the paper replaces.
[[nodiscard]] inline Distribution naive_distribute(
    const std::vector<std::uint64_t>& weights, unsigned bins) {
  Distribution out(std::max(1u, bins));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    out[i % out.size()].push_back(WorkItem{i, weights[i]});
  }
  return out;
}

/// LPT: sort by size descending, assign to the lightest bin.  Stable for
/// equal sizes (ties broken by input order) to keep runs deterministic.
[[nodiscard]] inline Distribution size_balanced_distribute(
    const std::vector<std::uint64_t>& weights, unsigned bins) {
  Distribution out(std::max(1u, bins));
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return weights[a] > weights[b];
                   });
  std::vector<std::uint64_t> load(out.size(), 0);
  for (const std::size_t i : order) {
    const std::size_t lightest = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    out[lightest].push_back(WorkItem{i, weights[i]});
    load[lightest] += weights[i];
  }
  return out;
}

/// Largest bin total — the makespan proxy benchmarks report.
[[nodiscard]] inline std::uint64_t max_bin_load(const Distribution& d) {
  std::uint64_t worst = 0;
  for (const auto& bin : d) {
    std::uint64_t sum = 0;
    for (const WorkItem& w : bin) sum += w.weight;
    worst = std::max(worst, sum);
  }
  return worst;
}

}  // namespace cpa::hsm
