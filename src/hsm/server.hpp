// The archive server (TSM stand-in).
//
// The server owns the object database and serializes metadata
// transactions: every migrate, recall and delete performs server
// round-trips that queue FIFO with a fixed per-transaction cost.  This is
// deliberately a single choke point — Sec 6.4: "Having a single TSM server
// creates a single point of a failure ... and a limitation when we need to
// scale beyond what a single TSM server can provide."  Benchmarks
// instantiate several servers to explore the paper's proposed fix.
//
// The server also terminates the non-LAN-free data path: without LAN-free,
// "all data is passed to a central server via the network, making the TSM
// server's network connection the bottleneck" (Sec 4.2.2) — modeled as the
// `data_pool()` every server-routed flow must traverse.
//
// The indexed TSM export (`export_db`) is refreshed synchronously on every
// object mutation, standing in for the periodic MySQL export job.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "hsm/object.hpp"
#include "metadb/table.hpp"
#include "metadb/tsm_export.hpp"
#include "simcore/flow_network.hpp"
#include "simcore/simulation.hpp"

namespace cpa::hsm {

struct ServerConfig {
  /// Service time of one metadata transaction (object insert/lookup/delete).
  sim::Tick metadata_txn_cost = sim::msecs(5);
  /// Bandwidth of the server's network connection, traversed by all
  /// server-routed (non-LAN-free) data.
  double data_bandwidth_bps = 80.0 * 1e6;
  /// First object id this server hands out.  Multi-server deployments
  /// give each server a disjoint range so ids stay globally unique.
  std::uint64_t object_id_base = 1;

  // --- metadata batching (Sec 6.4 scaling fix) -----------------------------
  // A batched round-trip coalesces up to `md_batch_size` mutations and
  // costs `batch_base + per_op * n` instead of n full round-trips — the
  // CASTOR-style request-batching answer to the single-server wall.  The
  // default of 1 keeps every digest-pinned workload bit-identical to the
  // stop-and-wait path.
  /// Max mutations coalesced into one batched round-trip; 1 disables
  /// batching entirely (legacy behavior).
  unsigned md_batch_size = 1;
  /// Max batched round-trips in flight per session before submitters are
  /// backpressured (pipelining depth).
  unsigned md_window = 4;
  /// A forming batch flushes after this long even if not full
  /// (deterministic virtual-time trigger).
  sim::Tick md_flush_timeout = sim::msecs(2);
  /// Fixed cost of a batched round-trip; 0 derives it from
  /// `metadata_txn_cost` so that `batch_cost(1) == metadata_txn_cost`.
  sim::Tick md_batch_base = 0;
  /// Marginal cost per mutation inside a batch; 0 derives
  /// `metadata_txn_cost / 10` (amortization cap of ~10x at large B).
  sim::Tick md_batch_per_op = 0;

  [[nodiscard]] bool batching() const { return md_batch_size > 1; }
  [[nodiscard]] sim::Tick batch_per_op() const {
    if (md_batch_per_op != 0) return md_batch_per_op;
    const sim::Tick derived = metadata_txn_cost / 10;
    return derived == 0 ? 1 : derived;
  }
  [[nodiscard]] sim::Tick batch_base() const {
    if (md_batch_base != 0) return md_batch_base;
    const sim::Tick per_op = batch_per_op();
    return metadata_txn_cost > per_op ? metadata_txn_cost - per_op : 0;
  }
  /// Service time of one batched round-trip carrying n mutations.
  [[nodiscard]] sim::Tick batch_cost(std::size_t n) const {
    if (n == 0) return 0;
    return batch_base() + batch_per_op() * static_cast<sim::Tick>(n);
  }
};

class ArchiveServer {
 public:
  ArchiveServer(sim::Simulation& sim, sim::FlowNetwork& net, std::string name,
                ServerConfig cfg);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }
  [[nodiscard]] sim::PoolId data_pool() const { return data_pool_; }

  /// Queues a metadata transaction; `done` fires after all earlier
  /// transactions have been serviced plus this one's cost.
  void metadata_txn(std::function<void()> done);

  /// Queues one batched round-trip that applies `ops` in order (atomically
  /// with respect to power failure: a batch in flight when `power_fail`
  /// lands applies none of its ops and fires none of its callbacks) and
  /// then `done`.  Costs `config().batch_cost(ops.size())`.
  void metadata_batch(std::vector<std::function<void()>> ops,
                      std::function<void()> done);

  /// Number of round-trips serviced (for utilization reporting; a batch
  /// counts once however many mutations it carries).
  [[nodiscard]] std::uint64_t txns_completed() const { return txns_; }
  [[nodiscard]] std::size_t txn_queue_depth() const { return queue_.size(); }
  /// Batched round-trips serviced and the mutations they carried.
  [[nodiscard]] std::uint64_t batches_completed() const { return batches_; }
  [[nodiscard]] std::uint64_t batch_ops_completed() const { return batch_ops_; }

  // --- fault injection: server restarts ------------------------------------
  /// Restarts the server.  For `outage` no new transaction starts (queued
  /// work waits until the server is back) and the epoch bumps, which
  /// in-flight migrations use to detect that their session died and
  /// requeue the interrupted unit.
  void restart(sim::Tick outage);
  /// Incremented on every restart.  Sample before an operation, compare
  /// after: a difference means a restart interrupted it.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] bool down() const { return sim_.now() < up_at_; }

  /// Whole-host power failure: the in-memory object database and its
  /// indexed export vanish, queued transactions are dropped on the floor
  /// (their callbacks never fire), and the epoch bumps so in-flight
  /// sessions notice.  Recovery replays the WAL back through
  /// `record_object`.  A transaction already in service completes its
  /// (now dead) callback harmlessly — abandoned jobs no-op on re-entry.
  void power_fail();

  /// Durability listeners: fired after every object mutation with the
  /// full-row image.  Installed by the WAL layer; unset hooks are free.
  struct MutationHooks {
    std::function<void(const ArchiveObject&)> on_record;
    std::function<void(std::uint64_t object_id)> on_delete;
  };
  void set_mutation_hooks(MutationHooks hooks) { hooks_ = std::move(hooks); }

  // --- object database (call inside metadata_txn callbacks) ---------------
  [[nodiscard]] std::uint64_t allocate_object_id() { return next_object_id_++; }
  /// Recovery: re-seats the allocator above every replayed object id.
  void set_next_object_id(std::uint64_t next) { next_object_id_ = next; }
  [[nodiscard]] std::uint64_t next_object_id() const { return next_object_id_; }
  void record_object(ArchiveObject obj);
  [[nodiscard]] const ArchiveObject* object(std::uint64_t id) const;
  bool delete_object(std::uint64_t id);
  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }
  void for_each_object(const std::function<void(const ArchiveObject&)>& fn) const;

  /// The indexed export (Sec 4.2.5) kept in sync with the object table.
  [[nodiscard]] metadb::TsmExportDb& export_db() { return export_; }
  [[nodiscard]] const metadb::TsmExportDb& export_db() const { return export_; }

 private:
  // A queued round-trip: a legacy singleton (`ops` empty, `batch` false,
  // `done` completes through power failure like it always has) or a batch
  // (`ops` applied in order, torn away whole if `power_fail` lands while
  // it is in service).
  struct Txn {
    sim::Tick cost = 0;
    std::vector<std::function<void()>> ops;
    std::function<void()> done;
    bool batch = false;
  };

  void pump();

  sim::Simulation& sim_;
  std::string name_;
  ServerConfig cfg_;
  sim::PoolId data_pool_;
  bool busy_ = false;
  std::deque<Txn> queue_;
  std::uint64_t txns_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batch_ops_ = 0;
  std::uint64_t power_gen_ = 0;  // bumped only by power_fail()
  std::uint64_t epoch_ = 0;
  sim::Tick up_at_ = 0;  // no transaction completes before this time
  std::uint64_t next_object_id_ = 1;
  metadb::Table<ArchiveObject> objects_;
  metadb::TsmExportDb export_;
  MutationHooks hooks_;
};

}  // namespace cpa::hsm
