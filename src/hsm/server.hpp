// The archive server (TSM stand-in).
//
// The server owns the object database and serializes metadata
// transactions: every migrate, recall and delete performs server
// round-trips that queue FIFO with a fixed per-transaction cost.  This is
// deliberately a single choke point — Sec 6.4: "Having a single TSM server
// creates a single point of a failure ... and a limitation when we need to
// scale beyond what a single TSM server can provide."  Benchmarks
// instantiate several servers to explore the paper's proposed fix.
//
// The server also terminates the non-LAN-free data path: without LAN-free,
// "all data is passed to a central server via the network, making the TSM
// server's network connection the bottleneck" (Sec 4.2.2) — modeled as the
// `data_pool()` every server-routed flow must traverse.
//
// The indexed TSM export (`export_db`) is refreshed synchronously on every
// object mutation, standing in for the periodic MySQL export job.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "hsm/object.hpp"
#include "metadb/table.hpp"
#include "metadb/tsm_export.hpp"
#include "simcore/flow_network.hpp"
#include "simcore/simulation.hpp"

namespace cpa::hsm {

struct ServerConfig {
  /// Service time of one metadata transaction (object insert/lookup/delete).
  sim::Tick metadata_txn_cost = sim::msecs(5);
  /// Bandwidth of the server's network connection, traversed by all
  /// server-routed (non-LAN-free) data.
  double data_bandwidth_bps = 80.0 * 1e6;
  /// First object id this server hands out.  Multi-server deployments
  /// give each server a disjoint range so ids stay globally unique.
  std::uint64_t object_id_base = 1;
};

class ArchiveServer {
 public:
  ArchiveServer(sim::Simulation& sim, sim::FlowNetwork& net, std::string name,
                ServerConfig cfg);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }
  [[nodiscard]] sim::PoolId data_pool() const { return data_pool_; }

  /// Queues a metadata transaction; `done` fires after all earlier
  /// transactions have been serviced plus this one's cost.
  void metadata_txn(std::function<void()> done);

  /// Number of transactions serviced (for utilization reporting).
  [[nodiscard]] std::uint64_t txns_completed() const { return txns_; }
  [[nodiscard]] std::size_t txn_queue_depth() const { return queue_.size(); }

  // --- fault injection: server restarts ------------------------------------
  /// Restarts the server.  For `outage` no new transaction starts (queued
  /// work waits until the server is back) and the epoch bumps, which
  /// in-flight migrations use to detect that their session died and
  /// requeue the interrupted unit.
  void restart(sim::Tick outage);
  /// Incremented on every restart.  Sample before an operation, compare
  /// after: a difference means a restart interrupted it.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] bool down() const { return sim_.now() < up_at_; }

  /// Whole-host power failure: the in-memory object database and its
  /// indexed export vanish, queued transactions are dropped on the floor
  /// (their callbacks never fire), and the epoch bumps so in-flight
  /// sessions notice.  Recovery replays the WAL back through
  /// `record_object`.  A transaction already in service completes its
  /// (now dead) callback harmlessly — abandoned jobs no-op on re-entry.
  void power_fail();

  /// Durability listeners: fired after every object mutation with the
  /// full-row image.  Installed by the WAL layer; unset hooks are free.
  struct MutationHooks {
    std::function<void(const ArchiveObject&)> on_record;
    std::function<void(std::uint64_t object_id)> on_delete;
  };
  void set_mutation_hooks(MutationHooks hooks) { hooks_ = std::move(hooks); }

  // --- object database (call inside metadata_txn callbacks) ---------------
  [[nodiscard]] std::uint64_t allocate_object_id() { return next_object_id_++; }
  /// Recovery: re-seats the allocator above every replayed object id.
  void set_next_object_id(std::uint64_t next) { next_object_id_ = next; }
  [[nodiscard]] std::uint64_t next_object_id() const { return next_object_id_; }
  void record_object(ArchiveObject obj);
  [[nodiscard]] const ArchiveObject* object(std::uint64_t id) const;
  bool delete_object(std::uint64_t id);
  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }
  void for_each_object(const std::function<void(const ArchiveObject&)>& fn) const;

  /// The indexed export (Sec 4.2.5) kept in sync with the object table.
  [[nodiscard]] metadb::TsmExportDb& export_db() { return export_; }
  [[nodiscard]] const metadb::TsmExportDb& export_db() const { return export_; }

 private:
  void pump();

  sim::Simulation& sim_;
  std::string name_;
  ServerConfig cfg_;
  sim::PoolId data_pool_;
  bool busy_ = false;
  std::deque<std::function<void()>> queue_;
  std::uint64_t txns_ = 0;
  std::uint64_t epoch_ = 0;
  sim::Tick up_at_ = 0;  // no transaction completes before this time
  std::uint64_t next_object_id_ = 1;
  metadb::Table<ArchiveObject> objects_;
  metadb::TsmExportDb export_;
  MutationHooks hooks_;
};

}  // namespace cpa::hsm
