// Archive objects: the server-side record of data stored on tape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cpa::hsm {

/// One managed object in the archive server's database.  A migrated file
/// is one object; with aggregation enabled, many small files share one
/// aggregate object (Sec 6.1: "bundling these small files into larger
/// aggregates better suited to getting the tape drive up to full speed").
struct ArchiveObject {
  std::uint64_t object_id = 0;
  std::string path;               // archive-file-system path ("" for aggregates)
  std::uint64_t gpfs_file_id = 0; // packed FileId for the synchronous deleter
  std::uint64_t size_bytes = 0;
  std::uint64_t content_tag = 0;  // propagated for integrity verification
  std::uint64_t cartridge_id = 0;
  std::uint64_t tape_seq = 0;
  std::string colocation_group;

  // Aggregation linkage.
  std::uint64_t aggregate_id = 0;     // parent aggregate (0 = standalone)
  std::uint64_t aggregate_offset = 0; // byte offset within the aggregate
  std::vector<std::uint64_t> members; // for aggregate objects: member ids

  /// Additional tape copies (copy storage pools — Sec 3.1 item 7:
  /// "multiple copies, remote copies, smart placement").  Recall falls
  /// back to a copy when the primary volume is unreadable.
  struct Replica {
    std::uint64_t cartridge_id = 0;
    std::uint64_t tape_seq = 0;
  };
  std::vector<Replica> copies;

  [[nodiscard]] bool is_aggregate() const { return !members.empty(); }
  [[nodiscard]] bool is_member() const { return aggregate_id != 0; }
};

}  // namespace cpa::hsm
