#include "hsm/txn_batch.hpp"

#include <utility>

#include "hsm/server.hpp"

namespace cpa::hsm {

TxnSession::TxnSession(sim::Simulation& sim, ArchiveServer& server, Config cfg,
                       Hooks hooks)
    : sim_(sim), server_(server), cfg_(cfg), hooks_(std::move(hooks)) {
  if (cfg_.batch_size == 0) cfg_.batch_size = 1;
  if (cfg_.window == 0) cfg_.window = 1;
}

void TxnSession::submit(std::function<void()> op, SubmitOpts opts) {
  ++submitted_;
  Op entry{std::move(op), std::move(opts.accepted), std::move(opts.applied)};
  if (forming_.size() >= cfg_.batch_size) dispatch();
  if (forming_.size() >= cfg_.batch_size) {
    // Backpressure: the forming batch is full and the window is full.
    // Park the op; `accepted` fires when a slot frees and it is admitted.
    overflow_.push_back(std::move(entry));
    return;
  }
  const bool was_empty = forming_.empty();
  if (entry.accepted) {
    auto accepted = std::move(entry.accepted);
    entry.accepted = nullptr;
    accepted();
  }
  forming_.push_back(std::move(entry));
  if (forming_.size() >= cfg_.batch_size) {
    dispatch();
  } else if (was_empty) {
    arm_timer();
  }
}

void TxnSession::flush() {
  flush_watermark_ = submitted_;
  dispatch();
}

void TxnSession::drain(std::function<void()> done) {
  const std::uint64_t threshold = submitted_;
  flush();
  if (applied_ >= threshold) {
    if (done) done();
    return;
  }
  drains_.push_back(Drain{threshold, std::move(done)});
}

void TxnSession::abandon() {
  ++gen_;
  ++timer_gen_;
  forming_.clear();
  overflow_.clear();
  drains_.clear();
  in_flight_ = 0;
  submitted_ = 0;
  dispatched_ = 0;
  applied_ = 0;
  flush_watermark_ = 0;
}

void TxnSession::refill() {
  while (!overflow_.empty() && forming_.size() < cfg_.batch_size) {
    Op entry = std::move(overflow_.front());
    overflow_.pop_front();
    if (entry.accepted) {
      auto accepted = std::move(entry.accepted);
      entry.accepted = nullptr;
      accepted();
    }
    forming_.push_back(std::move(entry));
  }
}

void TxnSession::dispatch() {
  refill();
  while (!forming_.empty() && in_flight_ < cfg_.window &&
         (forming_.size() >= cfg_.batch_size ||
          dispatched_ < flush_watermark_)) {
    send_batch();
    refill();
  }
  if (!forming_.empty()) arm_timer();
}

void TxnSession::send_batch() {
  ++timer_gen_;  // whatever timer covered these ops is moot now
  std::vector<Op> batch;
  batch.reserve(forming_.size());
  while (!forming_.empty()) {
    batch.push_back(std::move(forming_.front()));
    forming_.pop_front();
  }
  dispatched_ += batch.size();
  ++batches_sent_;
  ++in_flight_;
  std::vector<std::function<void()>> ops;
  ops.reserve(batch.size());
  for (Op& entry : batch) ops.push_back(std::move(entry.op));
  const std::uint64_t gen = gen_;
  server_.metadata_batch(
      std::move(ops), [this, gen, batch = std::move(batch)]() mutable {
        if (gen != gen_) return;  // session abandoned meanwhile
        auto settle = [this, gen, batch = std::move(batch)]() mutable {
          if (gen != gen_) return;
          if (hooks_.on_batch) hooks_.on_batch(batch.size());
          applied_ += batch.size();
          --in_flight_;
          // Applied callbacks may submit follow-up ops (e.g. the second
          // leg of a sync delete); the slot is free before they run.
          for (Op& entry : batch) {
            if (entry.applied) entry.applied();
          }
          check_drains();
          dispatch();
        };
        if (hooks_.barrier) {
          hooks_.barrier(std::move(settle));
        } else {
          settle();
        }
      });
}

void TxnSession::arm_timer() {
  const std::uint64_t timer = ++timer_gen_;
  sim_.at(sim_.now() + cfg_.flush_timeout, [this, timer] {
    if (timer != timer_gen_) return;
    flush();
  });
}

void TxnSession::check_drains() {
  std::vector<Drain> ready;
  for (std::size_t i = 0; i < drains_.size();) {
    if (drains_[i].threshold <= applied_) {
      ready.push_back(std::move(drains_[i]));
      drains_.erase(drains_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  for (Drain& drain : ready) {
    if (drain.done) drain.done();
  }
}

}  // namespace cpa::hsm
