#include "hsm/server.hpp"

#include <utility>

namespace cpa::hsm {

ArchiveServer::ArchiveServer(sim::Simulation& sim, sim::FlowNetwork& net,
                             std::string name, ServerConfig cfg)
    : sim_(sim),
      name_(std::move(name)),
      cfg_(cfg),
      objects_([](const ArchiveObject& o) { return o.object_id; }) {
  next_object_id_ = cfg_.object_id_base;
  data_pool_ = net.add_pool(name_ + ".data", cfg_.data_bandwidth_bps);
}

void ArchiveServer::metadata_txn(std::function<void()> done) {
  Txn txn;
  txn.cost = cfg_.metadata_txn_cost;
  txn.done = std::move(done);
  queue_.push_back(std::move(txn));
  if (!busy_) pump();
}

void ArchiveServer::metadata_batch(std::vector<std::function<void()>> ops,
                                   std::function<void()> done) {
  if (ops.empty()) {
    if (done) done();
    return;
  }
  Txn txn;
  txn.cost = cfg_.batch_cost(ops.size());
  txn.ops = std::move(ops);
  txn.done = std::move(done);
  txn.batch = true;
  queue_.push_back(std::move(txn));
  if (!busy_) pump();
}

void ArchiveServer::restart(sim::Tick outage) {
  ++epoch_;
  up_at_ = sim_.now() + outage;
  if (!busy_ && !queue_.empty()) pump();
}

void ArchiveServer::pump() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  if (sim_.now() < up_at_) {
    // Restart outage: hold the queue until the server is back.
    busy_ = true;
    sim_.at(up_at_, [this] { pump(); });
    return;
  }
  busy_ = true;
  Txn txn = std::move(queue_.front());
  queue_.pop_front();
  const std::uint64_t gen = power_gen_;
  sim_.after(txn.cost, [this, txn = std::move(txn), gen]() mutable {
    if (txn.batch && gen != power_gen_) {
      // A power failure landed while this batch was in service.  The
      // batch tears away whole: no op applies (no partial batch survives
      // into the wiped catalog) and no callback leaks to a dead job.  The
      // pump still runs so `busy_` cannot wedge the queue.
      pump();
      return;
    }
    ++txns_;
    if (txn.batch) {
      ++batches_;
      batch_ops_ += txn.ops.size();
      for (auto& op : txn.ops) op();
    }
    if (txn.done) txn.done();
    pump();
  });
}

void ArchiveServer::power_fail() {
  // Dropped, not failed: the callbacks belong to jobs the crash already
  // aborted.  busy_ stays untouched — a transaction in service completes
  // through its scheduled event and pumps whatever queue exists then.
  queue_.clear();
  ++epoch_;
  ++power_gen_;
  objects_.clear();
  export_.clear();
  next_object_id_ = cfg_.object_id_base;
}

void ArchiveServer::record_object(ArchiveObject obj) {
  // Mirror into the indexed export before storing (aggregates have no
  // single path/fid; they are not separately recallable by path).
  if (!obj.path.empty()) {
    export_.upsert(metadb::TapeObjectRow{obj.object_id, obj.gpfs_file_id,
                                         obj.path, obj.size_bytes,
                                         obj.cartridge_id, obj.tape_seq});
  }
  // Mutate first, log after: the WAL hook can snapshot the whole catalog
  // synchronously (auto-checkpoint), and that snapshot must already
  // contain this row or the checkpoint truncation loses it.
  const std::uint64_t id = obj.object_id;
  objects_.upsert(std::move(obj));
  if (hooks_.on_record) hooks_.on_record(*objects_.find(id));
}

const ArchiveObject* ArchiveServer::object(std::uint64_t id) const {
  return objects_.find(id);
}

bool ArchiveServer::delete_object(std::uint64_t id) {
  const ArchiveObject* obj = objects_.find(id);
  if (obj == nullptr) return false;
  export_.erase_object(id);
  const bool erased = objects_.erase(id);
  if (erased && hooks_.on_delete) hooks_.on_delete(id);
  return erased;
}

void ArchiveServer::for_each_object(
    const std::function<void(const ArchiveObject&)>& fn) const {
  objects_.for_each(fn);
}

}  // namespace cpa::hsm
