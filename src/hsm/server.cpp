#include "hsm/server.hpp"

#include <utility>

namespace cpa::hsm {

ArchiveServer::ArchiveServer(sim::Simulation& sim, sim::FlowNetwork& net,
                             std::string name, ServerConfig cfg)
    : sim_(sim),
      name_(std::move(name)),
      cfg_(cfg),
      objects_([](const ArchiveObject& o) { return o.object_id; }) {
  next_object_id_ = cfg_.object_id_base;
  data_pool_ = net.add_pool(name_ + ".data", cfg_.data_bandwidth_bps);
}

void ArchiveServer::metadata_txn(std::function<void()> done) {
  queue_.push_back(std::move(done));
  if (!busy_) pump();
}

void ArchiveServer::restart(sim::Tick outage) {
  ++epoch_;
  up_at_ = sim_.now() + outage;
  if (!busy_ && !queue_.empty()) pump();
}

void ArchiveServer::pump() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  if (sim_.now() < up_at_) {
    // Restart outage: hold the queue until the server is back.
    busy_ = true;
    sim_.at(up_at_, [this] { pump(); });
    return;
  }
  busy_ = true;
  auto done = std::move(queue_.front());
  queue_.pop_front();
  sim_.after(cfg_.metadata_txn_cost, [this, done = std::move(done)] {
    ++txns_;
    if (done) done();
    pump();
  });
}

void ArchiveServer::power_fail() {
  // Dropped, not failed: the callbacks belong to jobs the crash already
  // aborted.  busy_ stays untouched — a transaction in service completes
  // through its scheduled event and pumps whatever queue exists then.
  queue_.clear();
  ++epoch_;
  objects_.clear();
  export_.clear();
  next_object_id_ = cfg_.object_id_base;
}

void ArchiveServer::record_object(ArchiveObject obj) {
  // Mirror into the indexed export before storing (aggregates have no
  // single path/fid; they are not separately recallable by path).
  if (!obj.path.empty()) {
    export_.upsert(metadb::TapeObjectRow{obj.object_id, obj.gpfs_file_id,
                                         obj.path, obj.size_bytes,
                                         obj.cartridge_id, obj.tape_seq});
  }
  // Mutate first, log after: the WAL hook can snapshot the whole catalog
  // synchronously (auto-checkpoint), and that snapshot must already
  // contain this row or the checkpoint truncation loses it.
  const std::uint64_t id = obj.object_id;
  objects_.upsert(std::move(obj));
  if (hooks_.on_record) hooks_.on_record(*objects_.find(id));
}

const ArchiveObject* ArchiveServer::object(std::uint64_t id) const {
  return objects_.find(id);
}

bool ArchiveServer::delete_object(std::uint64_t id) {
  const ArchiveObject* obj = objects_.find(id);
  if (obj == nullptr) return false;
  export_.erase_object(id);
  const bool erased = objects_.erase(id);
  if (erased && hooks_.on_delete) hooks_.on_delete(id);
  return erased;
}

void ArchiveServer::for_each_object(
    const std::function<void(const ArchiveObject&)>& fn) const {
  objects_.for_each(fn);
}

}  // namespace cpa::hsm
