// Data-path wiring between the HSM and the cluster topology.
//
// The HSM does not know what the cluster looks like; it asks the fabric
// which bandwidth pools a given transfer must traverse.  The cluster
// module provides the production implementation (Fig. 7's two 10GigE
// trunks, FC4 SAN, NSD servers); tests provide trivial lambdas.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simcore/flow_network.hpp"
#include "tape/drive.hpp"

namespace cpa::hsm {

struct Fabric {
  /// Pools on the disk side of a transfer of `len` bytes at `offset` of
  /// the archive-file-system file `path` (the NSD servers it stripes over).
  std::function<std::vector<sim::PathLeg>(const std::string& path,
                                         std::uint64_t offset,
                                         std::uint64_t len)>
      disk_path;
  /// Pools between node and SAN (HBA + FC fabric) for LAN-free movement.
  std::function<std::vector<sim::PathLeg>(tape::NodeId)> san_path;
  /// Pools between node and the archive server's network for
  /// server-routed movement (node NIC + LAN).
  std::function<std::vector<sim::PathLeg>(tape::NodeId)> lan_path;

  /// A fabric with no bandwidth constraints (unit tests).
  static Fabric unconstrained() {
    Fabric f;
    f.disk_path = [](const std::string&, std::uint64_t, std::uint64_t) {
      return std::vector<sim::PathLeg>{};
    };
    f.san_path = [](tape::NodeId) { return std::vector<sim::PathLeg>{}; };
    f.lan_path = [](tape::NodeId) { return std::vector<sim::PathLeg>{}; };
    return f;
  }
};

}  // namespace cpa::hsm
