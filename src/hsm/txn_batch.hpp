// Metadata transaction batching + pipelining session.
//
// A TxnSession fronts one ArchiveServer's metadata path: callers `submit`
// object-DB mutations, the session coalesces them into batches of up to
// `batch_size` and keeps up to `window` batched round-trips in flight
// (async pipelining), replacing the stop-and-wait chains that paid one
// full round-trip per mutation.  This is the CASTOR-style request
// batching answer to the paper's Sec 6.4 single-server metadata wall.
//
// Flush triggers, all deterministic in virtual time:
//   * size      — the forming batch reaches `batch_size`;
//   * timeout   — `flush_timeout` after the first op entered an empty
//                 forming batch;
//   * explicit  — `flush()` / `drain()`;
//   * slot-free — a window slot frees while a flush is owed.
//
// Ordering: ops apply on the server in exact submission order (batches
// dispatch FIFO into the server's FIFO queue, and a batch applies its ops
// in order).  Backpressure: when the forming batch is full AND the window
// is full, further submissions park in an overflow queue and their
// `accepted` callback is deferred until a slot frees — this is how
// pipelined producers (recall chains, reclaim sweeps) are throttled.
//
// Durability: the `barrier` hook runs once per applied batch (one
// group-commit fsync via the WAL, not one per mutation); an op's
// `applied` callback fires only after that barrier, so applied implies
// durable whenever a WAL is attached.  `abandon()` models power failure:
// every queued/forming op vanishes and no callback — accepted, applied,
// or drain — leaks to the dead jobs, matching the server's own
// power-fail contract for queued transactions.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace cpa::hsm {

class ArchiveServer;

class TxnSession {
 public:
  struct Config {
    unsigned batch_size = 16;
    unsigned window = 4;
    sim::Tick flush_timeout = sim::msecs(2);
  };
  struct Hooks {
    /// Group-commit barrier run after a batch's ops apply; `done` fires
    /// when the batch is durable.  Unset => applied is durable at once.
    std::function<void(std::function<void()> done)> barrier;
    /// Fired once per completed batch with its op count (counters).
    std::function<void(std::size_t n)> on_batch;
  };

  TxnSession(sim::Simulation& sim, ArchiveServer& server, Config cfg,
             Hooks hooks);

  struct SubmitOpts {
    /// Op admitted into a forming batch (fires immediately unless the
    /// forming batch and the window are both full — backpressure).
    std::function<void()> accepted;
    /// Op applied on the server and past the durability barrier.
    std::function<void()> applied;
  };
  /// Queues `op` for the next batch.  Ops run on the server in
  /// submission order.
  void submit(std::function<void()> op, SubmitOpts opts = {});
  /// Dispatches everything submitted so far without waiting for the size
  /// or timeout trigger (window permitting; the rest follows as slots
  /// free up).
  void flush();
  /// Fires `done` once every op submitted before this call has applied.
  /// Implies `flush()`.
  void drain(std::function<void()> done);
  /// Power failure: drops all forming/queued work and outstanding drains
  /// without firing any callback; in-flight server batches are torn away
  /// by the server's own power-fail guard.  The session is reusable.
  void abandon();

  [[nodiscard]] std::size_t forming() const { return forming_.size(); }
  [[nodiscard]] std::size_t overflow() const { return overflow_.size(); }
  [[nodiscard]] unsigned in_flight() const { return in_flight_; }
  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t applied() const { return applied_; }
  [[nodiscard]] std::uint64_t batches_sent() const { return batches_sent_; }

 private:
  struct Op {
    std::function<void()> op;
    std::function<void()> accepted;  // unfired only while in overflow
    std::function<void()> applied;
  };
  struct Drain {
    std::uint64_t threshold;
    std::function<void()> done;
  };

  void refill();    // overflow -> forming, firing deferred accepted
  void dispatch();  // send forming batches while a trigger & window allow
  void send_batch();
  void arm_timer();
  void check_drains();

  sim::Simulation& sim_;
  ArchiveServer& server_;
  Config cfg_;
  Hooks hooks_;

  std::deque<Op> forming_;   // admitted, accepted already fired
  std::deque<Op> overflow_;  // backpressured, accepted deferred
  unsigned in_flight_ = 0;
  std::uint64_t submitted_ = 0;   // ops ever submitted
  std::uint64_t dispatched_ = 0;  // ops handed to the server
  std::uint64_t applied_ = 0;     // ops applied + durable
  std::uint64_t batches_sent_ = 0;
  // Ops numbered < flush_watermark_ must not wait for size/timeout.
  std::uint64_t flush_watermark_ = 0;
  std::uint64_t gen_ = 0;        // bumped by abandon(); stale batches no-op
  std::uint64_t timer_gen_ = 0;  // bumped to cancel an armed flush timer
  std::vector<Drain> drains_;
};

}  // namespace cpa::hsm
