#include "hsm/hsm.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "hsm/balance.hpp"
#include "sched/scheduler.hpp"

namespace cpa::hsm {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// Job state
// ---------------------------------------------------------------------------

struct HsmSystem::MigrateJob {
  struct Item {
    std::string path;
    std::uint64_t size = 0;
    std::uint64_t tag = 0;
    std::uint64_t fid = 0;
  };
  struct WriteUnit {
    std::vector<std::size_t> items;  // indices into `items`
    std::uint64_t bytes = 0;
    bool aggregate = false;
  };

  tape::NodeId node = 0;
  std::string group;
  std::vector<Item> items;
  std::vector<WriteUnit> units;
  std::size_t next_unit = 0;
  /// Failed attempts on the current unit (reset when the unit advances).
  unsigned unit_attempts = 0;
  /// 0 = primary pool; 1..tape_copies-1 = copy-pool passes over the same
  /// units (run before files are punched, while data is still on disk).
  unsigned copy_phase = 0;
  MigrateReport report;
  obs::SpanId span;
  tape::TapeDrive* drive = nullptr;
  tape::Cartridge* cart = nullptr;
  /// Set by power_fail: every continuation re-entry bails out, leaving
  /// drive/cartridge bookkeeping to the library's own crash path.
  bool dead = false;
  std::uint64_t abort_id = 0;
  std::function<void(const MigrateReport&)> done;
  /// Tenant/QoS the batch's drive holds are charged to (empty: unmanaged).
  sched::WorkClass wc;
  /// Per-tenant bandwidth-shaper legs appended to every data flow.
  std::vector<sim::PathLeg> shaper;

  [[nodiscard]] std::string phase_group() const {
    return copy_phase == 0 ? group
                           : group + "~copy" + std::to_string(copy_phase);
  }
};

struct HsmSystem::RecallJob {
  struct Entry {
    std::string path;
    std::uint64_t size = 0;
    std::uint64_t seq = 0;
    std::uint64_t oid = 0;  // owning tape object (aggregate for members)
    tape::NodeId node = 0;
    unsigned attempts = 0;  // failed read attempts so far
  };
  struct CartWork {
    tape::Cartridge* cart = nullptr;
    std::vector<Entry> entries;
  };

  RecallOptions options;
  std::vector<CartWork> work;
  std::size_t next_work = 0;   // next cartridge job to launch
  unsigned active = 0;
  RecallReport report;
  obs::SpanId span;
  bool dead = false;
  std::uint64_t abort_id = 0;
  std::function<void(const RecallReport&)> done;
  /// Per-tenant bandwidth-shaper legs appended to every data flow.
  std::vector<sim::PathLeg> shaper;
};

struct HsmSystem::UnitRecorder {
  std::uint64_t unit_oid = 0;
  std::uint64_t cart_id = 0;
  std::uint64_t seq = 0;
  std::size_t next_item = 0;
  std::uint64_t agg_offset = 0;
  std::vector<std::uint64_t> member_ids;
  bool aggregate_recorded = false;
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

HsmSystem::HsmSystem(sim::Simulation& sim, sim::FlowNetwork& net,
                     pfs::FileSystem& fs, tape::TapeLibrary& library,
                     Fabric fabric, HsmConfig cfg)
    : sim_(sim),
      net_(net),
      fs_(fs),
      lib_(library),
      fabric_(std::move(fabric)),
      cfg_(cfg) {
  assert(cfg_.server_count >= 1);
  for (unsigned i = 0; i < cfg_.server_count; ++i) {
    ServerConfig sc = cfg_.server;
    // Disjoint id ranges keep object ids globally unique across servers.
    sc.object_id_base = 1 + static_cast<std::uint64_t>(i) * (1ULL << 44);
    servers_.push_back(std::make_unique<ArchiveServer>(
        sim_, net_, "tsm" + std::to_string(i), sc));
  }
  fs_.set_dmapi_listener(this);
}

HsmSystem::~HsmSystem() { fs_.set_dmapi_listener(nullptr); }

std::uint64_t HsmSystem::register_abort(std::function<void()> fn) {
  const std::uint64_t id = next_abort_id_++;
  live_aborts_.emplace(id, std::move(fn));
  return id;
}

void HsmSystem::unregister_abort(std::uint64_t id) { live_aborts_.erase(id); }

void HsmSystem::power_fail() {
  // Abort first, wipe second: abort closures read their partial reports
  // and close spans, which must happen against a coherent registry.
  std::map<std::uint64_t, std::function<void()>> aborts;
  aborts.swap(live_aborts_);
  for (auto& [id, abort] : aborts) abort();
  // Batching sessions die with the plant: forming/queued ops vanish and
  // none of their callbacks leak to the aborted jobs.  The server-side
  // power generation guard tears away any batch already in service.
  for (auto& [server, session] : sessions_) session->abandon();
  for (auto& server : servers_) server->power_fail();
  fixity_.clear();
  obs_->metrics().counter("hsm.power_fails").inc();
}

HsmSystem::CrashReconcileReport HsmSystem::reconcile_crash() {
  CrashReconcileReport rep;
  // Pass 0: deletes that lost their ack.  synchronous_delete unlinks the
  // inode and kills the tape segments physically; only the catalog and
  // fixity erasures ride the WAL.  A tear can therefore resurrect the
  // object of a file that is provably gone — roll the delete forward.
  for (auto& server : servers_) {
    std::vector<std::uint64_t> lost;
    server->for_each_object([&](const ArchiveObject& o) {
      if (o.path.empty() || fs_.exists(o.path)) return;
      lost.push_back(o.object_id);
    });
    for (const std::uint64_t id : lost) {
      delete_object_cascade(*server, id);
      ++rep.deletes_completed;
    }
  }
  // Pass 1: tape reality vs catalog.  Tape is physical truth for data;
  // the catalog (checkpoint + replayed WAL prefix) is truth for what was
  // promised durable.
  lib_.for_each_cartridge([&](tape::Cartridge& cart) {
    std::vector<tape::Segment> live;  // snapshot: the loop mutates the cart
    for (const tape::Segment& s : cart.segments()) {
      if (s.object_id != 0) live.push_back(s);
    }
    for (const tape::Segment& s : live) {
      ArchiveServer* srv = find_object_server(s.object_id);
      const ArchiveObject* obj =
          srv != nullptr ? srv->object(s.object_id) : nullptr;
      if (obj == nullptr) {
        // Written after the last fsync: no row survived, nothing can ever
        // reference it.  Dead bytes feed the next reclamation pass.
        cart.mark_deleted(s.object_id);
        ++rep.orphan_segments;
        continue;
      }
      const bool recorded_here =
          (obj->cartridge_id == cart.id() && obj->tape_seq == s.seq) ||
          std::any_of(obj->copies.begin(), obj->copies.end(),
                      [&](const ArchiveObject::Replica& r) {
                        return r.cartridge_id == cart.id() &&
                               r.tape_seq == s.seq;
                      });
      if (recorded_here) continue;
      // The catalog knows the object but records it elsewhere.  If the
      // recorded primary is gone — a crash mid-relocation after the
      // source segment was already invalidated — roll the catalog
      // forward to the surviving copy; otherwise this is a dead
      // duplicate from an un-fsynced relocation.
      tape::Cartridge* rec_cart = lib_.cartridge(obj->cartridge_id);
      const tape::Segment* rec_seg =
          rec_cart != nullptr ? rec_cart->segment_by_seq(obj->tape_seq)
                              : nullptr;
      if (rec_seg == nullptr || rec_seg->object_id != obj->object_id) {
        relocate_object(obj->object_id, obj->cartridge_id, cart.id(), s.seq);
        fixity_.relocate(obj->object_id, obj->cartridge_id, cart.id(), s.seq);
        ++rep.adopted_segments;
      } else {
        cart.mark_deleted(s.object_id);
        ++rep.orphan_segments;
      }
    }
  });
  // Pass 2: fixity rows whose object vanished with the torn tail.
  std::set<std::uint64_t> dead_objects;
  fixity_.for_each([&](const integrity::FixityRow& r) {
    if (find_object_server(r.object_id) == nullptr) {
      dead_objects.insert(r.object_id);
    }
  });
  for (const std::uint64_t id : dead_objects) {
    fixity_.erase_object(id);
    ++rep.orphan_fixity_rows;
  }
  // Pass 2b: per-object location + fixity reconciliation.  A relocation
  // (reclaim, scrub repair) is several WAL records — object image, fixity
  // update — and the tear can land between any two of them.  For every
  // live object: drop recorded locations whose segment is dead (promote a
  // surviving copy to primary if the primary died), then demand the
  // fixity rows cover the live locations *exactly*, rebuilding them from
  // the checksums the tape segment headers carry when they don't — the
  // same media audit a real archive runs after a dirty stop.
  for (auto& server : servers_) {
    const auto seg_of = [this](std::uint64_t cart_id, std::uint64_t seq,
                               std::uint64_t object_id)
        -> const tape::Segment* {
      tape::Cartridge* cart = lib_.cartridge(cart_id);
      const tape::Segment* seg =
          cart != nullptr ? cart->segment_by_seq(seq) : nullptr;
      return seg != nullptr && seg->object_id == object_id ? seg : nullptr;
    };
    // Location fix-ups first (collected: the walk must not mutate the
    // table under itself).
    std::vector<ArchiveObject> fixups;
    server->for_each_object([&](const ArchiveObject& o) {
      if (o.is_member() || o.cartridge_id == 0) return;
      ArchiveObject upd = o;
      const std::size_t before = upd.copies.size();
      upd.copies.erase(
          std::remove_if(upd.copies.begin(), upd.copies.end(),
                         [&](const ArchiveObject::Replica& r) {
                           return seg_of(r.cartridge_id, r.tape_seq,
                                         o.object_id) == nullptr;
                         }),
          upd.copies.end());
      bool changed = upd.copies.size() != before;
      if (seg_of(upd.cartridge_id, upd.tape_seq, o.object_id) == nullptr &&
          !upd.copies.empty()) {
        upd.cartridge_id = upd.copies.front().cartridge_id;
        upd.tape_seq = upd.copies.front().tape_seq;
        upd.copies.erase(upd.copies.begin());
        changed = true;
      }
      if (changed) fixups.push_back(std::move(upd));
    });
    for (ArchiveObject& upd : fixups) {
      ++rep.locations_dropped;
      server->record_object(std::move(upd));
    }
    // Now the fixity rows, against the repaired locations.
    server->for_each_object([&](const ArchiveObject& o) {
      if (o.is_member() || o.cartridge_id == 0) return;
      struct Live {
        std::uint64_t cart, seq, bytes, checksum;
        unsigned ci;
      };
      std::vector<Live> live;
      auto note = [&](std::uint64_t cart_id, std::uint64_t seq, unsigned ci) {
        if (const tape::Segment* seg = seg_of(cart_id, seq, o.object_id)) {
          live.push_back({cart_id, seq, seg->bytes, seg->fingerprint, ci});
        }
      };
      note(o.cartridge_id, o.tape_seq, 0);
      unsigned ci = 1;
      for (const auto& cp : o.copies) note(cp.cartridge_id, cp.tape_seq, ci++);
      const auto rows = fixity_.by_object(o.object_id);
      bool exact = rows.size() == live.size();
      for (const integrity::FixityRow* r : rows) {
        if (!exact) break;
        exact = std::any_of(live.begin(), live.end(), [&](const Live& L) {
          return L.cart == r->cartridge_id && L.seq == r->tape_seq &&
                 L.bytes == r->length && L.checksum == r->checksum;
        });
      }
      if (exact) return;
      fixity_.erase_object(o.object_id);
      for (const Live& L : live) {
        fixity_.add(o.object_id, L.cart, L.seq, L.bytes, L.checksum, L.ci);
        ++rep.fixity_rebuilt;
      }
    });
  }
  // Pass 3: disk residency states vs catalog.  A premigrated inode whose
  // migration never became durable reverts to plain resident (the disk
  // copy is complete); a migrated stub without an object is data loss —
  // the pre-punch durability barrier exists to make that impossible.
  std::set<std::string> cataloged;
  for (auto& server : servers_) {
    server->for_each_object([&](const ArchiveObject& o) {
      if (!o.path.empty()) cataloged.insert(o.path);
    });
  }
  std::vector<std::string> remark;
  fs_.for_each_inode([&](const std::string& path, const pfs::InodeAttrs& a) {
    if (a.kind != pfs::FileKind::Regular) return;
    if (cataloged.count(path) != 0) return;
    if (a.dmapi == pfs::DmapiState::Premigrated) {
      remark.push_back(path);
    } else if (a.dmapi == pfs::DmapiState::Migrated) {
      ++rep.stub_violations;
    }
  });
  for (const std::string& path : remark) {
    fs_.make_resident(path);
    ++rep.premigrated_remarked;
  }
  obs::MetricsRegistry& m = obs_->metrics();
  if (rep.orphan_segments > 0) {
    m.counter("recovery.orphan_segments").add(rep.orphan_segments);
  }
  if (rep.adopted_segments > 0) {
    m.counter("recovery.adopted_segments").add(rep.adopted_segments);
  }
  if (rep.orphan_fixity_rows > 0) {
    m.counter("recovery.orphan_fixity_rows").add(rep.orphan_fixity_rows);
  }
  if (rep.fixity_rebuilt > 0) {
    m.counter("recovery.fixity_rebuilt").add(rep.fixity_rebuilt);
  }
  if (rep.deletes_completed > 0) {
    m.counter("recovery.deletes_completed").add(rep.deletes_completed);
  }
  if (rep.locations_dropped > 0) {
    m.counter("recovery.locations_dropped").add(rep.locations_dropped);
  }
  if (rep.premigrated_remarked > 0) {
    m.counter("recovery.premigrated_remarked").add(rep.premigrated_remarked);
  }
  if (rep.stub_violations > 0) {
    m.counter("recovery.stub_violations").add(rep.stub_violations);
  }
  return rep;
}

ArchiveServer& HsmSystem::server_for(const std::string& path) {
  if (servers_.size() == 1) return *servers_[0];
  return *servers_[fnv1a(path) % servers_.size()];
}

TxnSession& HsmSystem::session_for(ArchiveServer& server) {
  auto it = sessions_.find(&server);
  if (it != sessions_.end()) return *it->second;
  TxnSession::Config scfg;
  scfg.batch_size = cfg_.server.md_batch_size;
  scfg.window = cfg_.server.md_window;
  scfg.flush_timeout = cfg_.server.md_flush_timeout;
  TxnSession::Hooks hooks;
  // One group-commit fsync per applied batch (not per mutation): applied
  // implies durable whenever a WAL is attached.
  hooks.barrier = [this](std::function<void()> done) {
    barrier(std::move(done));
  };
  hooks.on_batch = [this](std::size_t n) {
    obs::MetricsRegistry& m = obs_->metrics();
    m.counter("hsm.md_batches").inc();
    m.counter("hsm.md_batch_ops").add(n);
    if (n > 1) m.counter("hsm.md_txn_saved").add(n - 1);
    m.stats("hsm.md_batch_size").add(static_cast<double>(n));
  };
  auto session =
      std::make_unique<TxnSession>(sim_, server, scfg, std::move(hooks));
  TxnSession& ref = *session;
  sessions_.emplace(&server, std::move(session));
  return ref;
}

void HsmSystem::drain_sessions(std::function<void()> k) {
  if (sessions_.empty()) {
    k();
    return;
  }
  auto remaining = std::make_shared<std::size_t>(sessions_.size());
  auto done = std::make_shared<std::function<void()>>(std::move(k));
  for (auto& [server, session] : sessions_) {
    session->drain([remaining, done] {
      if (--*remaining == 0) (*done)();
    });
  }
}

std::vector<sim::PathLeg> HsmSystem::net_legs(tape::NodeId node,
                                              const std::string& fs_path) const {
  std::vector<sim::PathLeg> pools;
  if (cfg_.lan_free) {
    for (const sim::PathLeg& p : fabric_.san_path(node)) pools.push_back(p);
  } else {
    for (const sim::PathLeg& p : fabric_.lan_path(node)) pools.push_back(p);
    // All server-routed data squeezes through the server's connection.
    pools.push_back(
        const_cast<HsmSystem*>(this)->server_for(fs_path).data_pool());
  }
  return pools;
}

std::vector<sim::PathLeg> HsmSystem::data_path(tape::NodeId node,
                                               const std::string& fs_path,
                                               std::uint64_t bytes) const {
  std::vector<sim::PathLeg> pools = fabric_.disk_path(fs_path, 0, bytes);
  for (const sim::PathLeg& p : net_legs(node, fs_path)) pools.push_back(p);
  return pools;
}

void HsmSystem::trace_wait(obs::Component comp, const char* name,
                           obs::SpanId parent, sim::Tick since) {
  if (sim_.now() <= since) return;
  obs::TraceRecorder& tr = obs_->trace();
  tr.link(parent, tr.complete(comp, name, name, since, sim_.now()));
}

void HsmSystem::trace_backoff(obs::SpanId parent, sim::Tick delay) {
  obs::TraceRecorder& tr = obs_->trace();
  tr.link(parent, tr.complete(obs::Component::Hsm, "retry", "retry_backoff",
                              sim_.now(), sim_.now() + delay));
}

// ---------------------------------------------------------------------------
// Migration
// ---------------------------------------------------------------------------

void HsmSystem::migrate_batch(tape::NodeId node, std::vector<std::string> paths,
                              std::string group,
                              std::function<void(const MigrateReport&)> done,
                              sched::WorkClass wc) {
  auto job = std::make_shared<MigrateJob>();
  job->node = node;
  job->group = std::move(group);
  job->done = std::move(done);
  job->wc = std::move(wc);
  if (sched_ != nullptr && !job->wc.tenant.empty()) {
    job->shaper = sched_->shaper_legs(job->wc.tenant);
  }
  job->report.started = sim_.now();
  job->span = obs_->trace().begin_lane(obs::Component::Hsm, "migrate",
                                       "migrate_batch", sim_.now());
  obs_->trace().arg_num(job->span, "paths",
                        static_cast<std::uint64_t>(paths.size()));
  job->abort_id = register_abort([this, job] {
    job->dead = true;
    job->report.finished = sim_.now();
    account_migrate(*job);
    if (job->done) job->done(job->report);
  });

  for (const std::string& path : paths) {
    const auto st = fs_.stat(path);
    if (!st.ok() || st.value().kind != pfs::FileKind::Regular ||
        st.value().dmapi != pfs::DmapiState::Resident) {
      ++job->report.files_failed;
      continue;
    }
    job->items.push_back(MigrateJob::Item{path, st.value().size,
                                          st.value().content_tag,
                                          st.value().fid.packed()});
  }

  // Build write units: optional aggregation of small files.
  if (cfg_.aggregation_enabled) {
    MigrateJob::WriteUnit agg;
    agg.aggregate = true;
    for (std::size_t i = 0; i < job->items.size(); ++i) {
      const auto& item = job->items[i];
      if (item.size < cfg_.aggregate_threshold) {
        if (agg.bytes + item.size > cfg_.aggregate_target && !agg.items.empty()) {
          job->units.push_back(std::move(agg));
          agg = MigrateJob::WriteUnit{};
          agg.aggregate = true;
        }
        agg.items.push_back(i);
        agg.bytes += item.size;
      } else {
        job->units.push_back(MigrateJob::WriteUnit{{i}, item.size, false});
      }
    }
    if (!agg.items.empty()) job->units.push_back(std::move(agg));
    // An "aggregate" of one file is just a file.
    for (auto& u : job->units) {
      if (u.items.size() == 1) u.aggregate = false;
    }
  } else {
    for (std::size_t i = 0; i < job->items.size(); ++i) {
      job->units.push_back(
          MigrateJob::WriteUnit{{i}, job->items[i].size, false});
    }
  }

  if (job->units.empty()) {
    sim_.after(0, [this, job] {
      if (job->dead) return;
      unregister_abort(job->abort_id);
      job->report.finished = job->report.started;
      account_migrate(*job);
      if (job->done) job->done(job->report);
    });
    return;
  }

  const sim::Tick t_req = sim_.now();
  lib_.acquire_drive(tape::DriveRequest{job->wc.tenant, job->wc.qos},
                     [this, job, t_req](tape::TapeDrive& drive) {
                       trace_wait(obs::Component::Tape, "drive_wait", job->span,
                                  t_req);
                       job->drive = &drive;
                       run_migrate_unit(job);
                     });
}

void HsmSystem::run_migrate_unit(std::shared_ptr<MigrateJob> job) {
  if (job->dead) return;
  if (job->next_unit >= job->units.size()) {
    // Copy-pool passes re-write every unit to a separate volume family
    // while the data is still on disk; files punch only after the last.
    if (job->copy_phase + 1 < cfg_.tape_copies) {
      ++job->copy_phase;
      job->next_unit = 0;
      if (job->cart != nullptr) {
        lib_.checkin_cartridge(*job->cart);
        job->cart = nullptr;
      }
      run_migrate_unit(job);
      return;
    }
    if (cfg_.tape_copies > 1) {
      // All copies exist; space management may now punch the disk data
      // (only for files that actually made it to tape).  The punch frees
      // the disk original, so the catalog rows must be durable first —
      // including any still forming in a batching session.
      drain_sessions([this, job] {
        barrier([this, job] {
          if (job->dead) return;
          for (const auto& item : job->items) {
            if (owner_object_id(item.path) == 0) continue;
            if (fs_.premigrate(item.path) == pfs::Errc::Ok &&
                cfg_.punch_after_migrate) {
              fs_.punch(item.path);
            }
          }
          finish_migrate(job);
        });
      });
      return;
    }
    finish_migrate(job);
    return;
  }
  const auto& unit = job->units[job->next_unit];

  // An object larger than a whole volume cannot be stored at all — the
  // paper's issue list item 2: "No way to get immense file from HSM disk
  // to parallel tapes and back (single stream of tapes)".  ArchiveFUSE
  // chunking exists precisely to keep objects below this limit.
  if (unit.bytes > lib_.config().cartridge_capacity) {
    job->report.files_failed += static_cast<unsigned>(unit.items.size());
    ++job->next_unit;
    job->unit_attempts = 0;
    run_migrate_unit(job);
    return;
  }

  // Volume management: roll to a new cartridge when the current one cannot
  // hold the unit.
  if (job->cart == nullptr || !job->cart->fits(unit.bytes)) {
    if (job->cart != nullptr) lib_.checkin_cartridge(*job->cart);
    job->cart = &lib_.checkout_cartridge(job->phase_group(), unit.bytes);
    const sim::Tick t_m = sim_.now();
    lib_.ensure_mounted(*job->drive, *job->cart, [this, job, t_m] {
      trace_wait(obs::Component::Tape, "mount_wait", job->span, t_m);
      run_migrate_unit(job);
    });
    return;
  }

  // Disk-side pools: the union of the unit's members' stripe servers.
  // Members stream back to back into one tape object, so the load spreads
  // across the distinct servers — normalize weights to 1/N rather than
  // summing per-member weights.
  std::vector<sim::PathLeg> pools;
  for (const std::size_t idx : unit.items) {
    const auto& item = job->items[idx];
    for (const sim::PathLeg& leg : fabric_.disk_path(item.path, 0, item.size)) {
      bool seen = false;
      for (const sim::PathLeg& have : pools) {
        if (have.pool == leg.pool) {
          seen = true;
          break;
        }
      }
      if (!seen) pools.push_back(leg);
    }
  }
  if (!pools.empty()) {
    const double w = 1.0 / static_cast<double>(pools.size());
    for (sim::PathLeg& leg : pools) leg.weight = w;
  }
  for (const sim::PathLeg& leg :
       net_legs(job->node, job->items[unit.items.front()].path)) {
    pools.push_back(leg);
  }
  pools.insert(pools.end(), job->shaper.begin(), job->shaper.end());

  ArchiveServer& server = server_for(job->items[unit.items.front()].path);
  std::uint64_t unit_oid = 0;
  if (job->copy_phase == 0) {
    unit_oid = server.allocate_object_id();
  } else {
    // Copy pass: the tape segment carries the owner object's id so media
    // reclamation (mark_deleted) works uniformly across copies.
    unit_oid = owner_object_id(job->items[unit.items.front()].path);
    if (unit_oid == 0) {  // primary never landed; skip the copy
      ++job->next_unit;
      job->unit_attempts = 0;
      run_migrate_unit(job);
      return;
    }
  }

  const std::uint64_t epoch0 = server.epoch();
  job->drive->write_object(
      job->node, unit_oid, unit.bytes, std::move(pools),
      [this, job, unit_oid, &server, epoch0](const tape::Segment* seg) {
        if (job->dead) return;
        const auto& unit = job->units[job->next_unit];
        if (seg == nullptr) {
          // A write fails transiently when the drive died (mid-transfer
          // or before it started); everything else — oversized object,
          // unmounted cartridge in a fault-free run — is permanent.
          if (job->drive->failed() &&
              cfg_.retry.allows(++job->unit_attempts)) {
            ++job->report.retries;
            // Failover: give the dead drive back (the library parks it)
            // and re-run the unit on a healthy one after backoff.
            lib_.release_drive(*job->drive);
            job->drive = nullptr;
            const sim::Tick delay = cfg_.retry.delay(job->unit_attempts);
            trace_backoff(job->span, delay);
            sim_.after(delay, [this, job] {
              if (job->dead) return;
              const sim::Tick t_req = sim_.now();
              lib_.acquire_drive(
                  tape::DriveRequest{job->wc.tenant, job->wc.qos},
                  [this, job, t_req](tape::TapeDrive& drive) {
                    if (job->dead) return;
                    trace_wait(obs::Component::Tape, "drive_wait", job->span,
                               t_req);
                    job->drive = &drive;
                    const sim::Tick t_m = sim_.now();
                    lib_.ensure_mounted(drive, *job->cart, [this, job, t_m] {
                      trace_wait(obs::Component::Tape, "mount_wait", job->span,
                                 t_m);
                      run_migrate_unit(job);
                    });
                  });
            });
            return;
          }
          if (job->copy_phase == 0) {
            job->report.files_failed += static_cast<unsigned>(unit.items.size());
          }
          ++job->next_unit;
          job->unit_attempts = 0;
          run_migrate_unit(job);
          return;
        }
        if (server.epoch() != epoch0) {
          // The archive server restarted while the unit streamed: the
          // session died with it, so the just-written object was never
          // committed.  Reclaim the dead segment and requeue the unit.
          job->cart->mark_deleted(unit_oid);
          ++job->report.units_requeued;
          if (cfg_.retry.allows(++job->unit_attempts)) {
            ++job->report.retries;
            const sim::Tick delay = cfg_.retry.delay(job->unit_attempts);
            trace_backoff(job->span, delay);
            sim_.after(delay, [this, job] { run_migrate_unit(job); });
          } else {
            if (job->copy_phase == 0) {
              job->report.files_failed +=
                  static_cast<unsigned>(unit.items.size());
            }
            ++job->next_unit;
            job->unit_attempts = 0;
            run_migrate_unit(job);
          }
          return;
        }
        ++job->report.tape_objects_written;
        // Fixity: checksum the unit's content identity, stamp it on the
        // just-written segment, and record the row next to the tape
        // position.  Rides the write completion — zero virtual time, and
        // primary + copy passes produce the same checksum so copy-pool
        // repair can compare like for like.
        {
          std::uint64_t sum = integrity::fixity_checksum(
              unit_oid, unit.bytes, 0, cfg_.content_salt);
          for (const std::size_t idx : unit.items) {
            sum = integrity::fixity_fold(sum, job->items[idx].tag);
            sum = integrity::fixity_fold(sum, job->items[idx].size);
          }
          job->cart->set_fingerprint(seg->seq, sum);
          fixity_.add(unit_oid, job->cart->id(), seg->seq, unit.bytes, sum,
                      job->copy_phase);
          ++job->report.checksums_computed;
        }
        if (job->copy_phase > 0) {
          // One transaction registers the replica on the owner object.
          ArchiveServer& owner_server =
              server_for(job->items[unit.items.front()].path);
          const std::uint64_t cart_id = job->cart->id();
          const std::uint64_t seq = seg->seq;
          const sim::Tick t_md = sim_.now();
          if (cfg_.server.batching()) {
            // Pipelined: the next unit's tape write overlaps this
            // replica registration; `accepted` backpressures only when
            // the session window is full.
            ArchiveServer* owner = &owner_server;
            TxnSession::SubmitOpts opts;
            opts.accepted = [this, job, t_md] {
              if (job->dead) return;
              trace_wait(obs::Component::Hsm, "md_batch", job->span, t_md);
              ++job->next_unit;
              job->unit_attempts = 0;
              run_migrate_unit(job);
            };
            session_for(owner_server)
                .submit(
                    [owner, unit_oid, cart_id, seq] {
                      if (const ArchiveObject* obj = owner->object(unit_oid)) {
                        ArchiveObject updated = *obj;
                        updated.copies.push_back(
                            ArchiveObject::Replica{cart_id, seq});
                        owner->record_object(std::move(updated));
                      }
                    },
                    std::move(opts));
            return;
          }
          owner_server.metadata_txn([this, job, unit_oid, cart_id, seq,
                                     &owner_server, t_md] {
            if (job->dead) return;
            trace_wait(obs::Component::Hsm, "md_txn", job->span, t_md);
            if (const ArchiveObject* obj = owner_server.object(unit_oid)) {
              ArchiveObject updated = *obj;
              updated.copies.push_back(ArchiveObject::Replica{cart_id, seq});
              owner_server.record_object(std::move(updated));
            }
            ++job->next_unit;
            job->unit_attempts = 0;
            run_migrate_unit(job);
          });
          return;
        }
        auto rec = std::make_shared<UnitRecorder>();
        rec->unit_oid = unit_oid;
        rec->cart_id = job->cart->id();
        rec->seq = seg->seq;
        record_unit_objects(job, rec);
      },
      job->span);
}

std::uint64_t HsmSystem::owner_object_id(const std::string& path) {
  ArchiveServer& server = server_for(path);
  const metadb::TapeObjectRow* row = server.export_db().by_path(path);
  if (row == nullptr) return 0;
  const ArchiveObject* obj = server.object(row->object_id);
  if (obj == nullptr) return 0;
  return obj->is_member() ? obj->aggregate_id : obj->object_id;
}

void HsmSystem::record_unit_objects(std::shared_ptr<MigrateJob> job,
                                    std::shared_ptr<UnitRecorder> rec) {
  if (job->dead) return;
  if (cfg_.server.batching()) {
    record_unit_objects_batched(job, rec);
    return;
  }
  const auto& unit = job->units[job->next_unit];

  // One metadata transaction per object, chained on the owning server's
  // queue (TSM semantics).
  if (rec->next_item < unit.items.size()) {
    const std::size_t idx = unit.items[rec->next_item++];
    const auto& item = job->items[idx];
    const bool member = unit.aggregate;
    ArchiveServer& owner = server_for(item.path);
    ArchiveObject obj;
    obj.object_id = member ? owner.allocate_object_id() : rec->unit_oid;
    obj.path = item.path;
    obj.gpfs_file_id = item.fid;
    obj.size_bytes = item.size;
    obj.content_tag = item.tag;
    obj.cartridge_id = rec->cart_id;
    obj.tape_seq = rec->seq;
    obj.colocation_group = job->group;
    if (member) {
      obj.aggregate_id = rec->unit_oid;
      obj.aggregate_offset = rec->agg_offset;
      rec->agg_offset += item.size;
      rec->member_ids.push_back(obj.object_id);
    }
    const sim::Tick t_md = sim_.now();
    owner.metadata_txn(
        [this, job, rec, obj = std::move(obj), &owner, t_md]() mutable {
          if (job->dead) return;
          trace_wait(obs::Component::Hsm, "md_txn", job->span, t_md);
          owner.record_object(std::move(obj));
          record_unit_objects(job, rec);
        });
    return;
  }

  // Members recorded; add the aggregate container object if needed.
  if (unit.aggregate && !rec->aggregate_recorded) {
    rec->aggregate_recorded = true;
    ArchiveServer& server = server_for(job->items[unit.items.front()].path);
    ArchiveObject agg;
    agg.object_id = rec->unit_oid;
    agg.size_bytes = unit.bytes;
    agg.cartridge_id = rec->cart_id;
    agg.tape_seq = rec->seq;
    agg.colocation_group = job->group;
    agg.members = rec->member_ids;
    const sim::Tick t_md = sim_.now();
    server.metadata_txn(
        [this, job, rec, agg = std::move(agg), &server, t_md]() mutable {
          if (job->dead) return;
          trace_wait(obs::Component::Hsm, "md_txn", job->span, t_md);
          server.record_object(std::move(agg));
          record_unit_objects(job, rec);
        });
    return;
  }

  // Transition file states and continue.  With copy pools configured the
  // punch waits until the last copy pass — the disk data is its source.
  auto transition = [this, job] {
    if (job->dead) return;
    const auto& unit = job->units[job->next_unit];
    for (const std::size_t idx : unit.items) {
      const auto& item = job->items[idx];
      if (cfg_.tape_copies == 1) {
        if (fs_.premigrate(item.path) == pfs::Errc::Ok &&
            cfg_.punch_after_migrate) {
          fs_.punch(item.path);
        }
      }
      ++job->report.files_migrated;
      job->report.bytes += item.size;
    }
    ++job->next_unit;
    job->unit_attempts = 0;
    run_migrate_unit(job);
  };
  if (cfg_.tape_copies == 1 && cfg_.punch_after_migrate) {
    // The punch frees the disk original: its catalog rows must be durable
    // first.  Premigrate alone never needs the barrier — recovery re-marks
    // uncovered premigrated files resident.
    barrier(std::move(transition));
  } else {
    transition();
  }
}

void HsmSystem::record_unit_objects_batched(std::shared_ptr<MigrateJob> job,
                                            std::shared_ptr<UnitRecorder> rec) {
  const auto& unit = job->units[job->next_unit];
  // Build every member object (and the aggregate container) up front and
  // submit them as one batched sequence.  Eager id allocation is safe:
  // ids are drawn from the owning server's counter exactly as the chained
  // path would, just earlier in virtual time.
  struct Pending {
    ArchiveServer* owner;
    ArchiveObject obj;
  };
  std::vector<Pending> objs;
  objs.reserve(unit.items.size() + 1);
  for (std::size_t k = 0; k < unit.items.size(); ++k) {
    const std::size_t idx = unit.items[k];
    const auto& item = job->items[idx];
    const bool member = unit.aggregate;
    ArchiveServer& owner = server_for(item.path);
    ArchiveObject obj;
    obj.object_id = member ? owner.allocate_object_id() : rec->unit_oid;
    obj.path = item.path;
    obj.gpfs_file_id = item.fid;
    obj.size_bytes = item.size;
    obj.content_tag = item.tag;
    obj.cartridge_id = rec->cart_id;
    obj.tape_seq = rec->seq;
    obj.colocation_group = job->group;
    if (member) {
      obj.aggregate_id = rec->unit_oid;
      obj.aggregate_offset = rec->agg_offset;
      rec->agg_offset += item.size;
      rec->member_ids.push_back(obj.object_id);
    }
    objs.push_back(Pending{&owner, std::move(obj)});
  }
  if (unit.aggregate) {
    ArchiveServer& server = server_for(job->items[unit.items.front()].path);
    ArchiveObject agg;
    agg.object_id = rec->unit_oid;
    agg.size_bytes = unit.bytes;
    agg.cartridge_id = rec->cart_id;
    agg.tape_seq = rec->seq;
    agg.colocation_group = job->group;
    agg.members = rec->member_ids;
    objs.push_back(Pending{&server, std::move(agg)});
  }

  // The state transition (premigrate + punch) joins on the whole unit
  // being applied — and, with a WAL, durable: the punch frees the disk
  // original, so no op covering it may still sit in a forming batch.
  const sim::Tick t_md = sim_.now();
  auto remaining = std::make_shared<std::size_t>(objs.size());
  auto arrive = [this, job, remaining, t_md] {
    if (job->dead) return;
    if (--*remaining > 0) return;
    trace_wait(obs::Component::Hsm, "md_batch", job->span, t_md);
    const auto& unit = job->units[job->next_unit];
    for (const std::size_t idx : unit.items) {
      const auto& item = job->items[idx];
      if (cfg_.tape_copies == 1) {
        if (fs_.premigrate(item.path) == pfs::Errc::Ok &&
            cfg_.punch_after_migrate) {
          fs_.punch(item.path);
        }
      }
      ++job->report.files_migrated;
      job->report.bytes += item.size;
    }
    ++job->next_unit;
    job->unit_attempts = 0;
    run_migrate_unit(job);
  };
  std::set<ArchiveServer*> touched;
  for (Pending& p : objs) {
    ArchiveServer* owner = p.owner;
    touched.insert(owner);
    TxnSession::SubmitOpts opts;
    opts.applied = arrive;
    session_for(*owner).submit(
        [owner, obj = std::move(p.obj)]() mutable {
          owner->record_object(std::move(obj));
        },
        std::move(opts));
  }
  // The unit is complete: push its tail batch out now rather than waiting
  // for the flush timer.
  for (ArchiveServer* owner : touched) session_for(*owner).flush();
}

void HsmSystem::finish_migrate(std::shared_ptr<MigrateJob> job) {
  if (job->dead) return;
  unregister_abort(job->abort_id);
  if (job->cart != nullptr) {
    lib_.checkin_cartridge(*job->cart);
    job->cart = nullptr;
  }
  if (job->drive != nullptr) {
    // Leave the volume mounted: the library migrates it lazily when some
    // other job needs the drive or the volume.
    lib_.release_drive(*job->drive);
    job->drive = nullptr;
  }
  job->report.finished = sim_.now();
  account_migrate(*job);
  if (job->done) job->done(job->report);
}

void HsmSystem::account_migrate(const MigrateJob& job) {
  obs::MetricsRegistry& m = obs_->metrics();
  m.counter("hsm.migrate_batches").inc();
  m.counter("hsm.migrated_files").add(job.report.files_migrated);
  m.counter("hsm.migrate_failed_files").add(job.report.files_failed);
  m.counter("hsm.migrated_bytes").add(job.report.bytes);
  m.counter("hsm.tape_objects_written").add(job.report.tape_objects_written);
  if (job.report.checksums_computed > 0) {
    m.counter("integrity.checksums_computed").add(job.report.checksums_computed);
  }
  m.counter("hsm.migrate_retries").add(job.report.retries);
  m.counter("hsm.migrate_units_requeued").add(job.report.units_requeued);
  obs_->trace().arg_num(job.span, "files",
                        static_cast<std::uint64_t>(job.report.files_migrated));
  obs_->trace().arg_num(job.span, "bytes", job.report.bytes);
  obs_->trace().end(job.span, sim_.now());
}

void HsmSystem::parallel_migrate(std::vector<std::string> paths,
                                 std::vector<tape::NodeId> nodes,
                                 DistributionStrategy strategy, std::string group,
                                 std::function<void(const MigrateReport&)> done,
                                 sched::WorkClass wc) {
  assert(!nodes.empty());
  std::vector<std::uint64_t> weights;
  weights.reserve(paths.size());
  for (const auto& p : paths) {
    const auto st = fs_.stat(p);
    weights.push_back(st.ok() ? st.value().size : 0);
  }
  const Distribution dist =
      strategy == DistributionStrategy::SizeBalanced
          ? size_balanced_distribute(weights, static_cast<unsigned>(nodes.size()))
          : naive_distribute(weights, static_cast<unsigned>(nodes.size()));

  struct Combined {
    MigrateReport report;
    unsigned outstanding = 0;
    std::function<void(const MigrateReport&)> done;
  };
  auto combined = std::make_shared<Combined>();
  combined->report.started = sim_.now();
  combined->done = std::move(done);

  std::vector<std::vector<std::string>> bins(dist.size());
  for (std::size_t b = 0; b < dist.size(); ++b) {
    for (const WorkItem& w : dist[b]) bins[b].push_back(paths[w.index]);
  }
  for (std::size_t b = 0; b < bins.size(); ++b) {
    if (bins[b].empty()) continue;
    ++combined->outstanding;
  }
  if (combined->outstanding == 0) {
    sim_.after(0, [combined] {
      combined->report.finished = combined->report.started;
      if (combined->done) combined->done(combined->report);
    });
    return;
  }
  for (std::size_t b = 0; b < bins.size(); ++b) {
    if (bins[b].empty()) continue;
    migrate_batch(nodes[b], std::move(bins[b]), group,
                  [this, combined](const MigrateReport& r) {
                    combined->report.files_migrated += r.files_migrated;
                    combined->report.files_failed += r.files_failed;
                    combined->report.bytes += r.bytes;
                    combined->report.tape_objects_written +=
                        r.tape_objects_written;
                    combined->report.checksums_computed += r.checksums_computed;
                    combined->report.retries += r.retries;
                    combined->report.units_requeued += r.units_requeued;
                    if (--combined->outstanding == 0) {
                      combined->report.finished = sim_.now();
                      if (combined->done) combined->done(combined->report);
                    }
                  },
                  wc);
  }
}

// ---------------------------------------------------------------------------
// Recall
// ---------------------------------------------------------------------------

void HsmSystem::recall(std::vector<std::string> paths, RecallOptions options,
                       std::function<void(const RecallReport&)> done) {
  assert(!options.nodes.empty());
  auto job = std::make_shared<RecallJob>();
  job->options = options;
  job->done = std::move(done);
  if (sched_ != nullptr && !options.tenant.empty()) {
    job->shaper = sched_->shaper_legs(options.tenant);
  }
  job->report.started = sim_.now();
  job->span = obs_->trace().begin_lane(obs::Component::Hsm, "recall", "recall",
                                       sim_.now());
  // Cross the pftool→HSM boundary: the recall batch hangs off the caller's
  // job span so the profiler can attribute tape time to that job.
  obs_->trace().link(options.parent_span, job->span);
  obs_->trace().arg_num(job->span, "paths",
                        static_cast<std::uint64_t>(paths.size()));
  job->abort_id = register_abort([this, job] {
    job->dead = true;
    job->report.finished = sim_.now();
    account_recall(*job);
    if (job->done) job->done(job->report);
  });

  // Resolve every path through the indexed export (Sec 4.2.5).
  struct Resolved {
    std::string path;
    std::uint64_t size, cart, seq;
    std::uint64_t oid = 0;
  };
  std::vector<Resolved> resolved;
  for (const std::string& path : paths) {
    ArchiveServer& server = server_for(path);
    const metadb::TapeObjectRow* row = server.export_db().by_path(path);
    if (row == nullptr) {
      ++job->report.files_failed;
      continue;
    }
    std::uint64_t cart = row->tape_id;
    std::uint64_t seq = row->tape_seq;
    // Media fallback: if the primary volume is damaged, recall from the
    // first healthy copy-pool replica.
    tape::Cartridge* primary = lib_.cartridge(cart);
    if (primary != nullptr && primary->damaged()) {
      bool recovered = false;
      if (const std::uint64_t owner = owner_object_id(path)) {
        if (const ArchiveObject* obj = server.object(owner)) {
          for (const auto& replica : obj->copies) {
            tape::Cartridge* copy = lib_.cartridge(replica.cartridge_id);
            if (copy != nullptr && !copy->damaged()) {
              cart = replica.cartridge_id;
              seq = replica.tape_seq;
              recovered = true;
              break;
            }
          }
        }
      }
      if (!recovered) {
        ++job->report.files_failed;
        continue;
      }
    }
    resolved.push_back(
        Resolved{path, row->size_bytes, cart, seq, owner_object_id(path)});
  }

  // Per-file round-robin assignment happens in arrival order, before any
  // grouping — this is what the stock recall daemons do and is the root of
  // the Sec 6.2 thrashing.
  std::map<std::uint64_t, std::vector<RecallJob::Entry>> by_cart;
  std::size_t file_rr = 0;
  for (const Resolved& r : resolved) {
    RecallJob::Entry e;
    e.path = r.path;
    e.size = r.size;
    e.seq = r.seq;
    e.oid = r.oid;
    if (options.assignment == RecallOptions::Assignment::RoundRobin) {
      e.node = options.nodes[file_rr++ % options.nodes.size()];
    }
    by_cart[r.cart].push_back(std::move(e));
  }
  std::size_t cart_rr = 0;
  for (auto& [cart_id, entries] : by_cart) {
    if (options.assignment == RecallOptions::Assignment::TapeAffinity) {
      const tape::NodeId node = options.nodes[cart_rr % options.nodes.size()];
      for (auto& e : entries) e.node = node;
    }
    ++cart_rr;
    if (options.tape_ordered) {
      std::stable_sort(entries.begin(), entries.end(),
                       [](const RecallJob::Entry& a, const RecallJob::Entry& b) {
                         return a.seq < b.seq;
                       });
    }
    RecallJob::CartWork w;
    w.cart = lib_.cartridge(cart_id);
    w.entries = std::move(entries);
    if (w.cart == nullptr) {
      job->report.files_failed += static_cast<unsigned>(w.entries.size());
      continue;
    }
    job->work.push_back(std::move(w));
  }

  if (job->work.empty()) {
    sim_.after(0, [this, job] {
      if (job->dead) return;
      unregister_abort(job->abort_id);
      job->report.finished = job->report.started;
      account_recall(*job);
      if (job->done) job->done(job->report);
    });
    return;
  }

  // Launch up to max_parallel_tapes cartridge jobs; the rest start as
  // earlier ones finish (and drive contention throttles further).
  const unsigned launch = static_cast<unsigned>(std::min<std::size_t>(
      job->work.size(), job->options.max_parallel_tapes));
  for (unsigned i = 0; i < launch; ++i) {
    ++job->active;
    ++job->next_work;
    run_recall_cart(job, i);
  }
}

void HsmSystem::run_recall_cart(std::shared_ptr<RecallJob> job,
                                std::size_t work_idx) {
  if (job->dead) return;
  const sim::Tick t_req = sim_.now();
  lib_.acquire_drive(
      tape::DriveRequest{job->options.tenant, job->options.qos},
      [this, job, work_idx, t_req](tape::TapeDrive& drive) {
        if (job->dead) return;
        trace_wait(obs::Component::Tape, "drive_wait", job->span, t_req);
        auto& work = job->work[work_idx];
        const sim::Tick t_m = sim_.now();
        lib_.ensure_mounted(drive, *work.cart,
                            [this, job, work_idx, &drive, t_m] {
                              trace_wait(obs::Component::Tape, "mount_wait",
                                         job->span, t_m);
                              run_recall_entry(job, work_idx, 0, drive);
                            });
      });
}

void HsmSystem::run_recall_entry(std::shared_ptr<RecallJob> job,
                                 std::size_t work_idx, std::size_t entry_idx,
                                 tape::TapeDrive& drive) {
  if (job->dead) return;
  auto& work = job->work[work_idx];
  if (entry_idx >= work.entries.size()) {
    lib_.release_drive(drive);
    if (job->next_work < job->work.size()) {
      const std::size_t next = job->next_work++;
      run_recall_cart(job, next);
      return;
    }
    if (--job->active == 0) {
      unregister_abort(job->abort_id);
      job->report.finished = sim_.now();
      account_recall(*job);
      if (job->done) job->done(job->report);
    }
    return;
  }
  const auto& entry = work.entries[entry_idx];
  std::vector<sim::PathLeg> pools = data_path(entry.node, entry.path, entry.size);
  pools.insert(pools.end(), job->shaper.begin(), job->shaper.end());
  drive.read_object(
      entry.node, entry.seq, std::move(pools),
      [this, job, work_idx, entry_idx, &drive](const tape::Segment* seg) {
        if (job->dead) return;
        auto& work = job->work[work_idx];
        auto& entry = work.entries[entry_idx];
        if (seg == nullptr) {
          // Transient causes: the drive died (fail over to a healthy one)
          // or the media went bad (back off and re-read — the fault
          // window or the copy-pool fallback may clear it).  A missing
          // sequence number stays a permanent failure.
          const bool drive_dead = drive.failed();
          const bool media_bad = work.cart->damaged();
          if ((drive_dead || media_bad) && cfg_.retry.allows(++entry.attempts)) {
            ++job->report.retries;
            const sim::Tick delay = cfg_.retry.delay(entry.attempts);
            trace_backoff(job->span, delay);
            if (drive_dead) {
              lib_.release_drive(drive);
              sim_.after(delay, [this, job, work_idx, entry_idx] {
                if (job->dead) return;
                const sim::Tick t_req = sim_.now();
                lib_.acquire_drive(
                    tape::DriveRequest{job->options.tenant, job->options.qos},
                    [this, job, work_idx, entry_idx,
                     t_req](tape::TapeDrive& nd) {
                      if (job->dead) return;
                      trace_wait(obs::Component::Tape, "drive_wait", job->span,
                                 t_req);
                      tape::TapeDrive* ndp = &nd;
                      const sim::Tick t_m = sim_.now();
                      lib_.ensure_mounted(
                          nd, *job->work[work_idx].cart,
                          [this, job, work_idx, entry_idx, ndp, t_m] {
                            trace_wait(obs::Component::Tape, "mount_wait",
                                       job->span, t_m);
                            run_recall_entry(job, work_idx, entry_idx, *ndp);
                          });
                    });
              });
            } else {
              tape::TapeDrive* dp = &drive;
              sim_.after(delay, [this, job, work_idx, entry_idx, dp] {
                run_recall_entry(job, work_idx, entry_idx, *dp);
              });
            }
            return;
          }
          ++job->report.files_failed;
          run_recall_entry(job, work_idx, entry_idx + 1, drive);
          return;
        }
        job->report.tape_bytes += seg->bytes;
        // Fixity verification on every recall: recompute-and-compare is a
        // zero-virtual-time check against the metadb row for this exact
        // tape location.  A mismatch is *not* a read failure — the bits
        // arrived, they are just wrong — so the loud-fault retry loop
        // above never sees it; we fall back to untried copy locations
        // instead, and exhaustion is a distinct unrepairable verdict.
        if (entry.oid != 0) {
          const integrity::FixityRow* frow =
              fixity_.at_location(entry.oid, work.cart->id());
          if (frow != nullptr &&
              seg->observed_fingerprint() != frow->checksum) {
            ++job->report.fixity_mismatches;
            auto alts = std::make_shared<
                std::vector<std::pair<std::uint64_t, std::uint64_t>>>();
            if (ArchiveServer* os = find_object_server(entry.oid)) {
              if (const ArchiveObject* obj = os->object(entry.oid)) {
                if (obj->cartridge_id != work.cart->id()) {
                  alts->emplace_back(obj->cartridge_id, obj->tape_seq);
                }
                for (const auto& replica : obj->copies) {
                  if (replica.cartridge_id != work.cart->id()) {
                    alts->emplace_back(replica.cartridge_id, replica.tape_seq);
                  }
                }
              }
            }
            recall_fallback(job, work_idx, entry_idx, drive, alts, 0);
            return;
          }
          if (frow != nullptr) ++job->report.fixity_verified;
        }
        job->report.bytes += entry.size;
        ++job->report.files_recalled;
        fs_.mark_recalled(entry.path);  // no-op if not punched
        const sim::Tick t_md = sim_.now();
        if (cfg_.server.batching()) {
          // Pipelined: the entry's recall-bookkeeping update rides a
          // batch while the drive streams the next entry; the window
          // backpressures the chain when the server falls behind.
          TxnSession::SubmitOpts opts;
          opts.accepted = [this, job, work_idx, entry_idx, &drive, t_md] {
            if (job->dead) return;
            trace_wait(obs::Component::Hsm, "md_batch", job->span, t_md);
            run_recall_entry(job, work_idx, entry_idx + 1, drive);
          };
          session_for(server_for(entry.path)).submit([] {}, std::move(opts));
          return;
        }
        server_for(entry.path).metadata_txn([this, job, work_idx, entry_idx,
                                             &drive, t_md] {
          if (job->dead) return;
          trace_wait(obs::Component::Hsm, "md_txn", job->span, t_md);
          run_recall_entry(job, work_idx, entry_idx + 1, drive);
        });
      },
      job->span);
}

void HsmSystem::recall_fallback(
    std::shared_ptr<RecallJob> job, std::size_t work_idx, std::size_t entry_idx,
    tape::TapeDrive& drive,
    std::shared_ptr<std::vector<std::pair<std::uint64_t, std::uint64_t>>> alts,
    std::size_t alt_idx) {
  if (job->dead) return;
  auto resume_batch = [this, job, work_idx, entry_idx, &drive] {
    // Put the batch's cartridge back under the heads (extra mounts are
    // the honest price of chasing replicas mid-batch) and move on.
    const sim::Tick t_m = sim_.now();
    lib_.ensure_mounted(drive, *job->work[work_idx].cart,
                        [this, job, work_idx, entry_idx, &drive, t_m] {
                          trace_wait(obs::Component::Tape, "mount_wait",
                                     job->span, t_m);
                          run_recall_entry(job, work_idx, entry_idx + 1, drive);
                        });
  };
  if (alt_idx >= alts->size()) {
    // Primary and every duplicate failed fixity: permanently bad, and
    // deliberately not retried — re-reading rotten bits cannot help.
    ++job->report.files_unrepairable;
    ++job->report.files_failed;
    resume_batch();
    return;
  }
  const auto [alt_cart_id, alt_seq] = (*alts)[alt_idx];
  tape::Cartridge* alt_cart = lib_.cartridge(alt_cart_id);
  if (alt_cart == nullptr || alt_cart->damaged()) {
    recall_fallback(job, work_idx, entry_idx, drive, alts, alt_idx + 1);
    return;
  }
  const sim::Tick t_alt = sim_.now();
  lib_.ensure_mounted(drive, *alt_cart, [this, job, work_idx, entry_idx,
                                         &drive, alts, alt_idx, alt_cart,
                                         alt_seq = alt_seq, t_alt] {
    trace_wait(obs::Component::Tape, "mount_wait", job->span, t_alt);
    auto& entry = job->work[work_idx].entries[entry_idx];
    std::vector<sim::PathLeg> pools =
        data_path(entry.node, entry.path, entry.size);
    pools.insert(pools.end(), job->shaper.begin(), job->shaper.end());
    drive.read_object(
        entry.node, alt_seq, std::move(pools),
        [this, job, work_idx, entry_idx, &drive, alts, alt_idx,
         alt_cart](const tape::Segment* seg) {
          if (job->dead) return;
          auto& entry = job->work[work_idx].entries[entry_idx];
          if (seg == nullptr) {
            recall_fallback(job, work_idx, entry_idx, drive, alts, alt_idx + 1);
            return;
          }
          job->report.tape_bytes += seg->bytes;
          const integrity::FixityRow* frow =
              fixity_.at_location(entry.oid, alt_cart->id());
          if (frow == nullptr || seg->observed_fingerprint() != frow->checksum) {
            ++job->report.fixity_mismatches;
            recall_fallback(job, work_idx, entry_idx, drive, alts, alt_idx + 1);
            return;
          }
          ++job->report.fixity_verified;
          job->report.bytes += entry.size;
          ++job->report.files_recalled;
          fs_.mark_recalled(entry.path);
          const sim::Tick t_md = sim_.now();
          auto resume = [this, job, work_idx, entry_idx, &drive, t_md] {
            if (job->dead) return;
            trace_wait(obs::Component::Hsm,
                       cfg_.server.batching() ? "md_batch" : "md_txn",
                       job->span, t_md);
            const sim::Tick t_m = sim_.now();
            lib_.ensure_mounted(
                drive, *job->work[work_idx].cart,
                [this, job, work_idx, entry_idx, &drive, t_m] {
                  trace_wait(obs::Component::Tape, "mount_wait", job->span,
                             t_m);
                  run_recall_entry(job, work_idx, entry_idx + 1, drive);
                });
          };
          if (cfg_.server.batching()) {
            TxnSession::SubmitOpts opts;
            opts.accepted = std::move(resume);
            session_for(server_for(entry.path)).submit([] {}, std::move(opts));
            return;
          }
          server_for(entry.path).metadata_txn(std::move(resume));
        },
        job->span);
  });
}

void HsmSystem::account_recall(const RecallJob& job) {
  obs::MetricsRegistry& m = obs_->metrics();
  m.counter("hsm.recalls").inc();
  m.counter("hsm.recalled_files").add(job.report.files_recalled);
  m.counter("hsm.recall_failed_files").add(job.report.files_failed);
  m.counter("hsm.recalled_bytes").add(job.report.bytes);
  m.counter("hsm.recalled_tape_bytes").add(job.report.tape_bytes);
  m.counter("hsm.recall_retries").add(job.report.retries);
  // Integrity counters materialize only once a checksum was actually
  // compared, so fault-free metric sets predating the fixity layer stay
  // byte-identical (pay-as-you-go).
  if (job.report.fixity_verified > 0) {
    m.counter("integrity.checksums_verified").add(job.report.fixity_verified);
  }
  if (job.report.fixity_mismatches > 0) {
    m.counter("integrity.checksums_mismatches")
        .add(job.report.fixity_mismatches);
  }
  if (job.report.files_unrepairable > 0) {
    m.counter("hsm.recall_unrepairable_files")
        .add(job.report.files_unrepairable);
  }
  obs_->trace().arg_num(job.span, "files",
                        static_cast<std::uint64_t>(job.report.files_recalled));
  obs_->trace().arg_num(job.span, "bytes", job.report.bytes);
  obs_->trace().end(job.span, sim_.now());
}

// ---------------------------------------------------------------------------
// Synchronous delete & reconcile
// ---------------------------------------------------------------------------

void HsmSystem::delete_object_cascade(ArchiveServer& server,
                                      std::uint64_t object_id) {
  const ArchiveObject* obj = server.object(object_id);
  if (obj == nullptr) return;
  // Reclaims the owner's segment on the primary volume and every
  // copy-pool replica.
  auto reclaim_media = [this](const ArchiveObject& owner) {
    if (tape::Cartridge* cart = lib_.cartridge(owner.cartridge_id)) {
      cart->mark_deleted(owner.object_id);
    }
    for (const auto& replica : owner.copies) {
      if (tape::Cartridge* cart = lib_.cartridge(replica.cartridge_id)) {
        cart->mark_deleted(owner.object_id);
      }
    }
    fixity_.erase_object(owner.object_id);
  };
  if (obj->is_member()) {
    const std::uint64_t agg_id = obj->aggregate_id;
    server.delete_object(object_id);
    // Reclaim the aggregate's tape segment once every member died.
    const ArchiveObject* agg = server.object(agg_id);
    if (agg != nullptr) {
      ArchiveObject updated = *agg;
      updated.members.erase(
          std::remove(updated.members.begin(), updated.members.end(),
                      object_id),
          updated.members.end());
      if (updated.members.empty()) {
        reclaim_media(updated);
        server.delete_object(agg_id);
      } else {
        server.record_object(std::move(updated));
      }
    }
  } else {
    reclaim_media(*obj);
    server.delete_object(object_id);
  }
}

void HsmSystem::synchronous_delete(const std::string& path,
                                   std::function<void(pfs::Errc)> done) {
  if (!done) done = [](pfs::Errc) {};
  const auto st = fs_.stat(path);
  if (!st.ok()) {
    sim_.after(0, [done, e = st.error()] { done(e); });
    return;
  }
  if (st.value().dmapi == pfs::DmapiState::Resident) {
    const pfs::Errc e = fs_.unlink(path);
    sim_.after(0, [done, e] { done(e); });
    return;
  }
  const std::uint64_t fid = st.value().fid.packed();
  ArchiveServer& server = server_for(path);
  // The txn chain can die with the server on a power failure; the abort
  // registry guarantees the caller still hears back (Stale: retry later).
  struct DeleteState {
    bool dead = false;
    std::uint64_t abort_id = 0;
  };
  auto ds = std::make_shared<DeleteState>();
  auto finish = [this, ds, done](pfs::Errc e) {
    unregister_abort(ds->abort_id);
    done(e);
  };
  ds->abort_id = register_abort([ds, done] {
    ds->dead = true;
    done(pfs::Errc::Stale);
  });
  if (cfg_.server.batching()) {
    // Batched two-leg delete: the fid->object join rides one batch, the
    // cascade another.  `applied` already sits behind the session's
    // group-commit barrier, so the Ok ack needs no extra fsync — a crash
    // after the ack can never resurrect the object.
    ArchiveServer* srv = &server;
    TxnSession& session = session_for(server);
    auto object_id = std::make_shared<std::uint64_t>(0);
    auto found = std::make_shared<bool>(false);
    TxnSession::SubmitOpts join_opts;
    join_opts.applied = [this, path, srv, &session, object_id, found, finish,
                         ds] {
      if (ds->dead) return;
      if (!*found) {
        fs_.unlink(path);
        finish(pfs::Errc::Ok);
        return;
      }
      TxnSession::SubmitOpts del_opts;
      del_opts.applied = [finish, ds] {
        if (ds->dead) return;
        finish(pfs::Errc::Ok);
      };
      session.submit(
          [this, path, srv, object_id] {
            delete_object_cascade(*srv, *object_id);
            fs_.unlink(path);
          },
          std::move(del_opts));
    };
    session.submit(
        [srv, fid, object_id, found] {
          const metadb::TapeObjectRow* row =
              srv->export_db().by_gpfs_file_id(fid);
          if (row != nullptr) {
            *object_id = row->object_id;
            *found = true;
          }
        },
        std::move(join_opts));
    return;
  }
  // Txn 1: the GPFS-fid -> TSM-object join through the indexed export.
  server.metadata_txn([this, path, fid, &server, finish, ds] {
    if (ds->dead) return;
    const metadb::TapeObjectRow* row = server.export_db().by_gpfs_file_id(fid);
    if (row == nullptr) {
      fs_.unlink(path);
      finish(pfs::Errc::Ok);
      return;
    }
    const std::uint64_t object_id = row->object_id;
    // Txn 2: delete file system entry and tape object together.
    server.metadata_txn([this, path, object_id, &server, finish, ds] {
      if (ds->dead) return;
      delete_object_cascade(server, object_id);
      fs_.unlink(path);
      // The Ok verdict is an ack: make the catalog/fixity erasures durable
      // before the caller hears it, so a crash after the ack can never
      // resurrect an object the caller believes gone.  A crash *during*
      // the wait already answered Stale through the abort registry.
      barrier([finish, ds] {
        if (ds->dead) return;
        finish(pfs::Errc::Ok);
      });
    });
  });
}

void HsmSystem::reconcile(bool delete_orphans,
                          std::function<void(const ReconcileReport&)> done) {
  ReconcileReport report;
  // Phase 1: tree-walk the file system, noting every live managed file id.
  std::set<std::uint64_t> live_fids;
  fs_.for_each_inode([&](const std::string&, const pfs::InodeAttrs& a) {
    ++report.inodes_walked;
    if (a.kind == pfs::FileKind::Regular && a.dmapi != pfs::DmapiState::Resident) {
      live_fids.insert(a.fid.packed());
    }
  });
  // Phase 2: compare every object one by one.
  struct Orphan {
    ArchiveServer* server;
    std::uint64_t object_id;
    std::uint64_t cartridge_id;
    std::uint64_t aggregate_id;
  };
  std::vector<Orphan> orphans;
  for (auto& server : servers_) {
    server->for_each_object([&](const ArchiveObject& obj) {
      if (obj.is_aggregate()) return;  // containers checked via members
      ++report.objects_checked;
      if (live_fids.count(obj.gpfs_file_id) == 0) {
        ++report.orphans_found;
        orphans.push_back(Orphan{server.get(), obj.object_id, obj.cartridge_id,
                                 obj.aggregate_id});
      }
    });
  }
  if (delete_orphans) {
    for (const Orphan& o : orphans) {
      if (o.aggregate_id == 0) {
        if (tape::Cartridge* cart = lib_.cartridge(o.cartridge_id)) {
          cart->mark_deleted(o.object_id);
        }
        fixity_.erase_object(o.object_id);
      }
      o.server->delete_object(o.object_id);
      ++report.orphans_deleted;
    }
  }
  // Cost model: the agent is a serial tree walk plus one metadata
  // transaction per object compared (Sec 4.2.6: "the overhead is
  // unacceptable" at tens of millions of files).
  report.duration =
      report.inodes_walked * cfg_.reconcile_walk_cost +
      report.objects_checked * cfg_.server.metadata_txn_cost;
  {
    obs::MetricsRegistry& m = obs_->metrics();
    m.counter("hsm.reconcile_runs").inc();
    m.counter("hsm.reconcile_inodes_walked").add(report.inodes_walked);
    m.counter("hsm.reconcile_orphans_found").add(report.orphans_found);
    m.counter("hsm.reconcile_orphans_deleted").add(report.orphans_deleted);
    const obs::SpanId sp =
        obs_->trace().complete(obs::Component::Hsm, "reconcile", "reconcile",
                               sim_.now(), sim_.now() + report.duration);
    obs_->trace().arg_num(sp, "orphans", report.orphans_found);
  }
  sim_.after(report.duration, [report, done] {
    if (done) done(report);
  });
}

// ---------------------------------------------------------------------------
// Space management (threshold migration)
// ---------------------------------------------------------------------------

void HsmSystem::space_management(
    const std::string& pool, double high_water, double low_water,
    std::function<void(const SpaceManagementReport&)> done) {
  SpaceManagementReport report;
  const auto pool_info = fs_.pool(pool);
  if (!pool_info.ok() || pool_info.value().config.capacity_bytes == 0) {
    sim_.after(0, [done = std::move(done), report] {
      if (done) done(report);
    });
    return;
  }
  const double capacity =
      static_cast<double>(pool_info.value().config.capacity_bytes);
  report.used_fraction_before =
      static_cast<double>(pool_info.value().used_bytes) / capacity;

  struct SmState {
    bool dead = false;
    std::uint64_t abort_id = 0;
  };
  auto ss = std::make_shared<SmState>();
  auto tail = [this, pool, capacity, done, ss](SpaceManagementReport report,
                                               std::uint64_t inodes) {
    unregister_abort(ss->abort_id);
    report.used_fraction_after =
        static_cast<double>(fs_.pool(pool).value().used_bytes) / capacity;
    report.duration = fs_.scan_duration(inodes, 1);
    {
      obs::MetricsRegistry& m = obs_->metrics();
      m.counter("hsm.space_mgmt_runs").inc();
      m.counter("hsm.punched_files").add(report.files_punched);
      m.counter("hsm.punched_bytes").add(report.bytes_freed);
      const obs::SpanId sp =
          obs_->trace().complete(obs::Component::Hsm, "space_mgmt",
                                 "space_mgmt", sim_.now(),
                                 sim_.now() + report.duration);
      obs_->trace().arg_num(sp, "punched", report.files_punched);
    }
    sim_.after(report.duration, [done, report] {
      if (done) done(report);
    });
  };
  ss->abort_id = register_abort([ss, done, report] {
    ss->dead = true;
    if (done) done(report);
  });

  std::uint64_t inodes = 0;
  struct Candidate {
    sim::Tick atime;
    std::string path;
    std::uint64_t size;
  };
  std::vector<Candidate> candidates;
  if (report.used_fraction_before >= high_water) {
    fs_.for_each_inode([&](const std::string& path, const pfs::InodeAttrs& a) {
      ++inodes;
      if (a.kind == pfs::FileKind::Regular && a.pool == pool &&
          a.dmapi == pfs::DmapiState::Premigrated) {
        candidates.push_back(Candidate{a.atime, path, a.size});
      }
    });
    // Least recently used data leaves disk first.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.atime != b.atime ? a.atime < b.atime
                                          : a.path < b.path;
              });
    // Punching frees premigrated disk data whose catalog rows may still
    // sit in a forming batch or the un-fsynced WAL tail: drain the
    // batching sessions (no-op when batching is off), then barrier.
    drain_sessions([this, ss, tail, report, inodes,
                    candidates = std::move(candidates),
                    used0 = pool_info.value().used_bytes,
                    target = static_cast<std::uint64_t>(low_water * capacity)]() mutable {
    barrier([this, ss, tail, report, inodes,
             candidates = std::move(candidates),
             used0, target]() mutable {
      if (ss->dead) return;
      std::uint64_t used = used0;
      for (const Candidate& c : candidates) {
        if (used <= target) break;
        if (fs_.punch(c.path) != pfs::Errc::Ok) continue;
        ++report.files_punched;
        report.bytes_freed += c.size;
        used = used > c.size ? used - c.size : 0;
      }
      tail(report, inodes);
    });
    });
    return;
  }
  fs_.for_each_inode(
      [&](const std::string&, const pfs::InodeAttrs&) { ++inodes; });
  tail(report, inodes);
}

// ---------------------------------------------------------------------------
// Space reclamation
// ---------------------------------------------------------------------------

struct HsmSystem::ReclaimJob {
  tape::NodeId node = 0;
  std::vector<tape::CartridgeId> victims;
  std::size_t next_victim = 0;
  // Per-victim state.
  tape::Cartridge* src = nullptr;
  tape::Cartridge* dst = nullptr;
  std::vector<tape::Segment> live;  // snapshot of live segments, seq order
  tape::TapeDrive* src_drive = nullptr;
  tape::TapeDrive* dst_drive = nullptr;
  ReclaimReport report;
  obs::SpanId span;
  bool dead = false;
  std::uint64_t abort_id = 0;
  std::function<void(const ReclaimReport&)> done;
};

void HsmSystem::reclaim_volumes(double dead_fraction, tape::NodeId node,
                                std::function<void(const ReclaimReport&)> done) {
  auto job = std::make_shared<ReclaimJob>();
  job->node = node;
  job->done = std::move(done);
  job->report.started = sim_.now();
  job->span = obs_->trace().begin_lane(obs::Component::Hsm, "reclaim",
                                       "reclaim", sim_.now());
  job->abort_id = register_abort([this, job] {
    job->dead = true;
    job->report.finished = sim_.now();
    account_reclaim(*job);
    if (job->done) job->done(job->report);
  });
  lib_.for_each_cartridge([&](tape::Cartridge& cart) {
    ++job->report.volumes_examined;
    if (cart.bytes_used() == 0 || lib_.is_checked_out(cart.id())) return;
    const double frac = static_cast<double>(cart.dead_bytes()) /
                        static_cast<double>(cart.bytes_used());
    const bool has_live = cart.dead_bytes() < cart.bytes_used();
    if (frac >= dead_fraction && has_live) job->victims.push_back(cart.id());
  });
  run_reclaim_volume(job);
}

void HsmSystem::run_reclaim_volume(std::shared_ptr<ReclaimJob> job) {
  if (job->dead) return;
  // Release the previous victim's drives.
  if (job->src_drive != nullptr) {
    lib_.release_drive(*job->src_drive);
    job->src_drive = nullptr;
  }
  if (job->dst_drive != nullptr) {
    lib_.checkin_cartridge(*job->dst);
    lib_.release_drive(*job->dst_drive);
    job->dst_drive = nullptr;
  }
  if (job->next_victim >= job->victims.size()) {
    unregister_abort(job->abort_id);
    job->report.finished = sim_.now();
    account_reclaim(*job);
    if (job->done) {
      auto done = std::move(job->done);
      sim_.after(0, [done = std::move(done), report = job->report] {
        done(report);
      });
    }
    return;
  }
  job->src = lib_.cartridge(job->victims[job->next_victim++]);
  if (job->src == nullptr) {
    run_reclaim_volume(job);
    return;
  }
  job->live.clear();
  std::uint64_t live_bytes = 0;
  for (const tape::Segment& s : job->src->segments()) {
    if (s.object_id != 0) {
      job->live.push_back(s);
      live_bytes += s.bytes;
    }
  }
  job->dst = &lib_.checkout_cartridge(job->src->colocation_group(), live_bytes,
                                      job->src->id());
  // Two drives: source and destination, mounted once per victim.  Reclaim
  // is background plant maintenance — Maintenance QoS lets any tenant's
  // foreground work jump its drive requests.
  const tape::DriveRequest maint{"", sched::QosClass::Maintenance};
  lib_.acquire_drive(maint, [this, job, maint](tape::TapeDrive& src_drive) {
    if (job->dead) return;
    job->src_drive = &src_drive;
    lib_.acquire_drive(maint, [this, job](tape::TapeDrive& dst_drive) {
      if (job->dead) return;
      job->dst_drive = &dst_drive;
      lib_.ensure_mounted(*job->src_drive, *job->src, [this, job] {
        if (job->dead) return;
        lib_.ensure_mounted(*job->dst_drive, *job->dst, [this, job] {
          run_reclaim_segment(job, 0);
        });
      });
    });
  });
}

void HsmSystem::run_reclaim_segment(std::shared_ptr<ReclaimJob> job,
                                    std::size_t seg_idx) {
  if (job->dead) return;
  if (seg_idx >= job->live.size()) {
    if (cfg_.server.batching()) {
      // Join: every segment's pipelined catalog update must have applied
      // before the volume is declared reclaimed and its drives released.
      drain_sessions([this, job] {
        if (job->dead) return;
        ++job->report.volumes_reclaimed;
        run_reclaim_volume(job);
      });
      return;
    }
    ++job->report.volumes_reclaimed;
    run_reclaim_volume(job);
    return;
  }
  const tape::Segment seg = job->live[seg_idx];
  // Tape-to-tape through the mover node's SAN legs; the two drive rate
  // pools are added by the drives themselves.
  job->src_drive->read_object(
      job->node, seg.seq, net_legs(job->node, ""),
      [this, job, seg, seg_idx](const tape::Segment* read) {
        if (job->dead) return;
        if (read == nullptr) {  // damaged or vanished: skip
          run_reclaim_segment(job, seg_idx + 1);
          return;
        }
        // Reclamation copies bits, not truth: the destination inherits
        // whatever fingerprint the source actually reads back, so silent
        // corruption travels with the segment and scrub still flags it at
        // the new location.
        const std::uint64_t moved_fp = read->observed_fingerprint();
        job->dst_drive->write_object(
            job->node, seg.object_id, seg.bytes, net_legs(job->node, ""),
            [this, job, seg, seg_idx, moved_fp](const tape::Segment* written) {
              if (job->dead) return;
              if (written == nullptr) {
                run_reclaim_segment(job, seg_idx + 1);
                return;
              }
              const std::uint64_t new_seq = written->seq;
              job->dst->set_fingerprint(new_seq, moved_fp);
              ArchiveServer* server = find_object_server(seg.object_id);
              if (server == nullptr) {
                run_reclaim_segment(job, seg_idx + 1);
                return;
              }
              if (cfg_.server.batching()) {
                // Pipelined: the location update rides a batch while the
                // drives copy the next segment.  The op value-captures
                // the volume ids — job->src/dst advance across volumes.
                const std::uint64_t src_id = job->src->id();
                const std::uint64_t dst_id = job->dst->id();
                TxnSession::SubmitOpts opts;
                opts.accepted = [this, job, seg_idx] {
                  if (job->dead) return;
                  run_reclaim_segment(job, seg_idx + 1);
                };
                session_for(*server).submit(
                    [this, job, seg, src_id, dst_id, new_seq] {
                      relocate_object(seg.object_id, src_id, dst_id, new_seq);
                      fixity_.relocate(seg.object_id, src_id, dst_id, new_seq);
                      if (tape::Cartridge* src = lib_.cartridge(src_id)) {
                        src->mark_deleted(seg.object_id);
                      }
                      ++job->report.objects_moved;
                      job->report.bytes_moved += seg.bytes;
                    },
                    std::move(opts));
                return;
              }
              server->metadata_txn([this, job, seg, seg_idx, new_seq] {
                if (job->dead) return;
                relocate_object(seg.object_id, job->src->id(), job->dst->id(),
                                new_seq);
                fixity_.relocate(seg.object_id, job->src->id(), job->dst->id(),
                                 new_seq);
                job->src->mark_deleted(seg.object_id);
                ++job->report.objects_moved;
                job->report.bytes_moved += seg.bytes;
                run_reclaim_segment(job, seg_idx + 1);
              });
            });
      });
}

void HsmSystem::account_reclaim(const ReclaimJob& job) {
  obs::MetricsRegistry& m = obs_->metrics();
  m.counter("hsm.reclaim_runs").inc();
  m.counter("hsm.reclaimed_volumes").add(job.report.volumes_reclaimed);
  m.counter("hsm.reclaim_objects_moved").add(job.report.objects_moved);
  m.counter("hsm.reclaim_bytes_moved").add(job.report.bytes_moved);
  obs_->trace().arg_num(job.span, "volumes",
                        static_cast<std::uint64_t>(job.report.volumes_reclaimed));
  obs_->trace().end(job.span, sim_.now());
}

// ---------------------------------------------------------------------------
// Scrubbing
// ---------------------------------------------------------------------------

struct HsmSystem::ScrubJob {
  integrity::ScrubConfig cfg;
  std::vector<integrity::FixityRow> rows;  // snapshot, in visit order
  std::size_t next = 0;
  tape::TapeDrive* drive = nullptr;
  std::uint64_t last_cart = 0;
  integrity::ScrubReport report;
  obs::SpanId span;
  bool dead = false;
  std::uint64_t abort_id = 0;
  std::function<void(const integrity::ScrubReport&)> done;
};

void HsmSystem::scrub(integrity::ScrubConfig scfg,
                      std::function<void(const integrity::ScrubReport&)> done) {
  auto job = std::make_shared<ScrubJob>();
  job->cfg = scfg;
  job->rows = integrity::plan_scrub_order(fixity_, scfg.tape_ordered);
  job->done = std::move(done);
  job->report.started = sim_.now();
  job->span = obs_->trace().begin_lane(obs::Component::Integrity, "scrub",
                                       "scrub", sim_.now());
  obs_->trace().arg_num(job->span, "rows",
                        static_cast<std::uint64_t>(job->rows.size()));
  job->abort_id = register_abort([this, job] {
    job->dead = true;
    job->report.finished = sim_.now();
    account_scrub(*job);
    if (job->done) job->done(job->report);
  });
  if (job->rows.empty()) {
    sim_.after(0, [this, job] { finish_scrub(job); });
    return;
  }
  // One drive for the whole pass: foreground recalls keep the others.
  lib_.acquire_drive(
      tape::DriveRequest{job->cfg.tenant, sched::QosClass::Maintenance},
      [this, job](tape::TapeDrive& drive) {
        if (job->dead) return;
        job->drive = &drive;
        run_scrub_row(job);
      });
}

void HsmSystem::run_scrub_row(std::shared_ptr<ScrubJob> job) {
  if (job->dead) return;
  if (job->next >= job->rows.size()) {
    finish_scrub(job);
    return;
  }
  if (job->drive->failed()) {
    // Loud drive failure mid-scrub: fail over and carry on.
    lib_.release_drive(*job->drive);
    job->drive = nullptr;
    lib_.acquire_drive(
        tape::DriveRequest{job->cfg.tenant, sched::QosClass::Maintenance},
        [this, job](tape::TapeDrive& drive) {
          if (job->dead) return;
          job->drive = &drive;
          run_scrub_row(job);
        });
    return;
  }
  const integrity::FixityRow row = job->rows[job->next];
  tape::Cartridge* cart = lib_.cartridge(row.cartridge_id);
  const tape::Segment* live =
      cart != nullptr ? cart->segment_by_seq(row.tape_seq) : nullptr;
  if (cart == nullptr || live == nullptr || live->object_id != row.object_id) {
    // Stale snapshot entry: the segment moved or died since planning.
    ++job->next;
    run_scrub_row(job);
    return;
  }
  if (lib_.volume_claimed_elsewhere(*cart, *job->drive)) {
    // A foreground batch (recall, migrate) wants this volume; drop the
    // scrub's claim so the contender can take it and re-check the row
    // once it has moved on.
    lib_.relinquish_claim(*job->drive);
    sim_.after(sim::secs(5), [this, job] { run_scrub_row(job); });
    return;
  }
  if (cart->id() != job->last_cart) {
    job->last_cart = cart->id();
    ++job->report.cartridges_visited;
  }
  lib_.ensure_mounted(*job->drive, *cart, [this, job, row] {
    if (job->dead) return;
    job->drive->read_object(
        job->cfg.node, row.tape_seq, net_legs(job->cfg.node, ""),
        [this, job, row](const tape::Segment* seg) {
          if (job->dead) return;
          if (seg == nullptr) {
            ++job->report.read_errors;
            ++job->next;
            run_scrub_row(job);
            return;
          }
          ++job->report.segments_scanned;
          job->report.bytes_scanned += seg->bytes;
          if (seg->observed_fingerprint() == row.checksum) {
            scrub_pace(job, seg->bytes);
            return;
          }
          ++job->report.mismatches;
          // Repair lattice: clean tape duplicate -> disk re-migration ->
          // unrepairable.  Candidates are the object's other recorded
          // locations, each read back and verified before it is trusted.
          auto alts = std::make_shared<
              std::vector<std::pair<std::uint64_t, std::uint64_t>>>();
          if (ArchiveServer* os = find_object_server(row.object_id)) {
            if (const ArchiveObject* obj = os->object(row.object_id)) {
              if (obj->cartridge_id != row.cartridge_id) {
                alts->emplace_back(obj->cartridge_id, obj->tape_seq);
              }
              for (const auto& replica : obj->copies) {
                if (replica.cartridge_id != row.cartridge_id) {
                  alts->emplace_back(replica.cartridge_id, replica.tape_seq);
                }
              }
            }
          }
          run_scrub_repair(job, row, alts, 0);
        },
        job->span);
  });
}

void HsmSystem::run_scrub_repair(
    std::shared_ptr<ScrubJob> job, const integrity::FixityRow& row,
    std::shared_ptr<std::vector<std::pair<std::uint64_t, std::uint64_t>>> alts,
    std::size_t alt_idx) {
  if (job->dead) return;
  if (alt_idx < alts->size()) {
    const auto [cand_cart_id, cand_seq] = (*alts)[alt_idx];
    tape::Cartridge* cand = lib_.cartridge(cand_cart_id);
    const tape::Segment* live =
        cand != nullptr ? cand->segment_by_seq(cand_seq) : nullptr;
    if (cand == nullptr || cand->damaged() || live == nullptr ||
        live->object_id != row.object_id) {
      run_scrub_repair(job, row, alts, alt_idx + 1);
      return;
    }
    if (lib_.volume_claimed_elsewhere(*cand, *job->drive)) {
      lib_.relinquish_claim(*job->drive);
      sim_.after(sim::secs(5), [this, job, row, alts, alt_idx] {
        run_scrub_repair(job, row, alts, alt_idx);
      });
      return;
    }
    lib_.ensure_mounted(*job->drive, *cand, [this, job, row, alts, alt_idx,
                                             cand, cand_seq = cand_seq] {
      if (job->dead) return;
      job->drive->read_object(
          job->cfg.node, cand_seq, net_legs(job->cfg.node, ""),
          [this, job, row, alts, alt_idx, cand](const tape::Segment* seg) {
            if (job->dead) return;
            if (seg == nullptr ||
                seg->observed_fingerprint() != row.checksum) {
              // This duplicate is rotten (or unreadable) too.
              run_scrub_repair(job, row, alts, alt_idx + 1);
              return;
            }
            write_scrub_repair(job, row, cand->id(),
                               net_legs(job->cfg.node, ""),
                               integrity::ScrubRepair::Action::RepairedFromCopy);
          });
    });
    return;
  }
  // No clean duplicate anywhere on tape: re-migrate from the original
  // disk data if it is still resident or premigrated.
  ArchiveServer* server = find_object_server(row.object_id);
  const ArchiveObject* obj =
      server != nullptr ? server->object(row.object_id) : nullptr;
  if (obj != nullptr && !obj->path.empty()) {
    const auto st = fs_.stat(obj->path);
    if (st.ok() && st.value().kind == pfs::FileKind::Regular &&
        st.value().dmapi != pfs::DmapiState::Migrated) {
      write_scrub_repair(job, row, 0,
                         data_path(job->cfg.node, obj->path, row.length),
                         integrity::ScrubRepair::Action::Remigrated);
      return;
    }
  }
  scrub_unrepairable(job, row);
}

void HsmSystem::write_scrub_repair(std::shared_ptr<ScrubJob> job,
                                   const integrity::FixityRow& row,
                                   std::uint64_t source_cartridge,
                                   std::vector<sim::PathLeg> pools,
                                   integrity::ScrubRepair::Action action) {
  if (job->dead) return;
  tape::Cartridge* bad = lib_.cartridge(row.cartridge_id);
  if (bad == nullptr) {
    scrub_unrepairable(job, row);
    return;
  }
  tape::Cartridge* dst = &lib_.checkout_cartridge(bad->colocation_group(),
                                                  row.length, row.cartridge_id);
  lib_.ensure_mounted(*job->drive, *dst, [this, job, row, source_cartridge,
                                          pools = std::move(pools), action,
                                          dst]() mutable {
    if (job->dead) return;
    job->drive->write_object(
        job->cfg.node, row.object_id, row.length, std::move(pools),
        [this, job, row, source_cartridge, action,
         dst](const tape::Segment* written) {
          if (job->dead) return;
          if (written == nullptr) {
            lib_.checkin_cartridge(*dst);
            scrub_unrepairable(job, row);
            return;
          }
          const std::uint64_t new_seq = written->seq;
          // The rewrite carries verified-clean bits: stamp the recorded
          // checksum on the fresh segment.
          dst->set_fingerprint(new_seq, row.checksum);
          ArchiveServer* server = find_object_server(row.object_id);
          if (server == nullptr) {
            lib_.checkin_cartridge(*dst);
            scrub_unrepairable(job, row);
            return;
          }
          if (cfg_.server.batching()) {
            // Pipelined: the rebind rides a batch while the scrub moves
            // on to its next row (the stale-row guard and read-back
            // verification tolerate the short catalog lag).
            TxnSession::SubmitOpts opts;
            opts.accepted = [this, job] {
              if (job->dead) return;
              scrub_pace(job, 0);
            };
            session_for(*server).submit(
                [this, job, row, source_cartridge, action, dst, new_seq] {
                  relocate_object(row.object_id, row.cartridge_id, dst->id(),
                                  new_seq);
                  fixity_.relocate(row.object_id, row.cartridge_id, dst->id(),
                                   new_seq);
                  if (tape::Cartridge* bad = lib_.cartridge(row.cartridge_id)) {
                    bad->mark_deleted(row.object_id);
                  }
                  lib_.checkin_cartridge(*dst);
                  integrity::ScrubRepair entry;
                  entry.object_id = row.object_id;
                  entry.bad_cartridge = row.cartridge_id;
                  entry.bad_seq = row.tape_seq;
                  entry.source_cartridge = source_cartridge;
                  entry.new_cartridge = dst->id();
                  entry.new_seq = new_seq;
                  entry.action = action;
                  job->report.repair_log.push_back(entry);
                  if (action ==
                      integrity::ScrubRepair::Action::RepairedFromCopy) {
                    ++job->report.repaired_from_copy;
                  } else {
                    ++job->report.remigrated;
                  }
                },
                std::move(opts));
            return;
          }
          server->metadata_txn([this, job, row, source_cartridge, action,
                                dst, new_seq] {
            if (job->dead) return;
            relocate_object(row.object_id, row.cartridge_id, dst->id(),
                            new_seq);
            fixity_.relocate(row.object_id, row.cartridge_id, dst->id(),
                             new_seq);
            if (tape::Cartridge* bad = lib_.cartridge(row.cartridge_id)) {
              bad->mark_deleted(row.object_id);
            }
            lib_.checkin_cartridge(*dst);
            integrity::ScrubRepair entry;
            entry.object_id = row.object_id;
            entry.bad_cartridge = row.cartridge_id;
            entry.bad_seq = row.tape_seq;
            entry.source_cartridge = source_cartridge;
            entry.new_cartridge = dst->id();
            entry.new_seq = new_seq;
            entry.action = action;
            job->report.repair_log.push_back(entry);
            if (action == integrity::ScrubRepair::Action::RepairedFromCopy) {
              ++job->report.repaired_from_copy;
            } else {
              ++job->report.remigrated;
            }
            scrub_pace(job, 0);
          });
        });
  });
}

void HsmSystem::scrub_unrepairable(std::shared_ptr<ScrubJob> job,
                                   const integrity::FixityRow& row) {
  if (job->dead) return;
  // Reported exactly once: the row's status flips, so the next scrub's
  // plan (status == Ok only) never revisits it.
  fixity_.set_status(row.row_id, integrity::FixityStatus::Unrepairable);
  ++job->report.unrepairable;
  integrity::ScrubRepair entry;
  entry.object_id = row.object_id;
  entry.bad_cartridge = row.cartridge_id;
  entry.bad_seq = row.tape_seq;
  entry.action = integrity::ScrubRepair::Action::Unrepairable;
  job->report.repair_log.push_back(entry);
  scrub_pace(job, 0);
}

void HsmSystem::scrub_pace(std::shared_ptr<ScrubJob> job,
                           std::uint64_t scanned_bytes) {
  ++job->next;
  if (job->cfg.rate_limit_bps > 0 && scanned_bytes > 0) {
    // Pause long enough that scanned bytes over (read time + pause) can
    // never exceed the ceiling; the drive is held but the robot and the
    // other drives service foreground recalls meanwhile.
    const sim::Tick pause = sim::secs(static_cast<double>(scanned_bytes) /
                                      job->cfg.rate_limit_bps);
    sim_.after(pause, [this, job] { run_scrub_row(job); });
    return;
  }
  run_scrub_row(job);
}

void HsmSystem::finish_scrub(std::shared_ptr<ScrubJob> job) {
  if (job->dead) return;
  // Pipelined repairs append to the report from inside their batch ops:
  // join on them before the report is sealed (passthrough when batching
  // is off).
  drain_sessions([this, job] {
    if (job->dead) return;
    unregister_abort(job->abort_id);
    if (job->drive != nullptr) {
      lib_.release_drive(*job->drive);
      job->drive = nullptr;
    }
    job->report.finished = sim_.now();
    account_scrub(*job);
    if (job->done) {
      auto done = std::move(job->done);
      sim_.after(
          0, [done = std::move(done), report = job->report] { done(report); });
    }
  });
}

void HsmSystem::account_scrub(const ScrubJob& job) {
  // All scrub counters live under the integrity.* namespace, matching the
  // Component::Integrity tag on the scrub span.
  obs::MetricsRegistry& m = obs_->metrics();
  m.counter("integrity.scrub_runs").inc();
  m.counter("integrity.scrub_segments_scanned").add(job.report.segments_scanned);
  m.counter("integrity.scrub_bytes_scanned").add(job.report.bytes_scanned);
  if (job.report.segments_scanned > 0) {
    m.counter("integrity.checksums_verified").add(job.report.segments_scanned);
  }
  if (job.report.mismatches > 0) {
    m.counter("integrity.scrub_mismatches").add(job.report.mismatches);
    m.counter("integrity.checksums_mismatches").add(job.report.mismatches);
  }
  if (job.report.repaired() > 0) {
    m.counter("integrity.scrub_repaired").add(job.report.repaired());
  }
  if (job.report.unrepairable > 0) {
    m.counter("integrity.scrub_unrepairable").add(job.report.unrepairable);
  }
  obs_->trace().arg_num(job.span, "scanned", job.report.segments_scanned);
  obs_->trace().arg_num(job.span, "mismatches", job.report.mismatches);
  obs_->trace().end(job.span, sim_.now());
}

ArchiveServer* HsmSystem::find_object_server(std::uint64_t object_id) {
  for (auto& server : servers_) {
    if (server->object(object_id) != nullptr) return server.get();
  }
  return nullptr;
}

void HsmSystem::relocate_object(std::uint64_t object_id, std::uint64_t old_cart,
                                std::uint64_t new_cart, std::uint64_t new_seq) {
  ArchiveServer* server = find_object_server(object_id);
  if (server == nullptr) return;
  const ArchiveObject* obj = server->object(object_id);
  if (obj == nullptr) return;
  ArchiveObject updated = *obj;
  if (updated.cartridge_id == old_cart) {
    updated.cartridge_id = new_cart;
    updated.tape_seq = new_seq;
  } else {
    for (auto& replica : updated.copies) {
      if (replica.cartridge_id == old_cart) {
        replica.cartridge_id = new_cart;
        replica.tape_seq = new_seq;
        break;
      }
    }
  }
  const std::vector<std::uint64_t> members = updated.members;
  server->record_object(std::move(updated));
  // Aggregate members carry their own (exported) copy of the primary
  // location; refresh them when the primary segment moved.
  for (const std::uint64_t member_id : members) {
    ArchiveServer* ms = find_object_server(member_id);
    if (ms == nullptr) continue;
    const ArchiveObject* member = ms->object(member_id);
    if (member == nullptr) continue;
    ArchiveObject mu = *member;
    if (mu.cartridge_id == old_cart) {
      mu.cartridge_id = new_cart;
      mu.tape_seq = new_seq;
      ms->record_object(std::move(mu));
    }
  }
}

// ---------------------------------------------------------------------------
// DMAPI events
// ---------------------------------------------------------------------------

void HsmSystem::on_read_offline(const std::string&, pfs::FileId) {
  ++offline_reads_;
  obs_->metrics().counter("hsm.dmapi_offline_reads").inc();
}

void HsmSystem::on_managed_data_destroyed(const std::string&, pfs::FileId) {
  ++destroys_;
  obs_->metrics().counter("hsm.dmapi_destroys").inc();
}

}  // namespace cpa::hsm
