#include "check/campaign.hpp"

#include <algorithm>
#include <cstdio>

#include "simcore/rng.hpp"
#include "simcore/units.hpp"

namespace cpa::check {

const char* to_string(Doctor d) {
  switch (d) {
    case Doctor::None: return "none";
    case Doctor::BreakScrubRepair: return "break-scrub-repair";
    case Doctor::DropFixityRow: return "drop-fixity-row";
  }
  return "?";
}

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::MakeTree: return "make-tree";
    case OpKind::Archive: return "archive";
    case OpKind::Migrate: return "migrate";
    case OpKind::Restore: return "restore";
    case OpKind::DeleteOne: return "delete";
    case OpKind::Scrub: return "scrub";
    case OpKind::Reconcile: return "reconcile";
    case OpKind::CrashRestart: return "crash-restart";
  }
  return "?";
}

std::string ChaosOp::render() const {
  char line[160];
  std::snprintf(line, sizeof(line),
                "%s lane=%u gap=%llu a=%llu b=%llu cancel=%lld",
                to_string(kind), lane,
                static_cast<unsigned long long>(gap),
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b),
                static_cast<long long>(cancel_after));
  return line;
}

std::string ChaosCampaign::render() const {
  std::string out;
  char head[160];
  std::snprintf(head, sizeof(head),
                "# chaos campaign seed=%llu ops=%zu lanes=%u\n",
                static_cast<unsigned long long>(cfg.seed), ops.size(),
                lane_count());
  out += head;
  for (unsigned l = 0; l < lane_count(); ++l) {
    out += "lane " + std::to_string(l) + " tenant=" + lane_tenant[l] +
           " qos=" + sched::to_string(lane_qos[l]) + "\n";
  }
  for (const ChaosOp& op : ops) {
    out += op.render();
    out += '\n';
  }
  if (!fault_plan.empty()) {
    out += "faults: " + fault_plan.render() + "\n";
  }
  return out;
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

/// Per-lane generation state: what the op chain has established so far.
/// The runner re-checks every precondition at execution time (a cancel
/// race or a dropped op during shrinking may invalidate it), so this is
/// only used to keep generated sequences mostly-sensible.
struct LaneState {
  bool made = false;
  bool archived = false;
  bool migrated = false;
  std::uint64_t files = 0;
  std::uint64_t deletes = 0;
};

}  // namespace

ChaosCampaign ChaosCampaign::generate(const ChaosConfig& cfg) {
  ChaosCampaign c;
  c.cfg = cfg;
  sim::Rng rng(cfg.seed ^ 0xC0A5C0A5C0A5ULL);

  const unsigned lanes =
      cfg.lanes != 0
          ? cfg.lanes
          : std::clamp(cfg.ops / 12u, 2u, 8u);
  const unsigned tenants = std::max(1u, cfg.tenants);
  for (unsigned l = 0; l < lanes; ++l) {
    c.lane_tenant.push_back("t" + std::to_string(l % tenants));
    c.lane_qos.push_back(rng.chance(0.5) ? sched::QosClass::Interactive
                                         : sched::QosClass::Bulk);
  }

  std::vector<LaneState> st(lanes);
  // The maintenance lane (index == lanes) runs scrubs and reconciles.
  const unsigned kMaint = lanes;
  unsigned emitted = 0;
  while (emitted < cfg.ops) {
    ChaosOp op;
    // Bursty gaps: a quarter of the ops fire nearly back-to-back, which
    // is what piles lanes onto the admission queue at once (and gives
    // cancel races and the starvation bound something to chew on).
    op.gap = rng.chance(0.25) ? sim::secs(rng.uniform_u64(0, 2))
                              : sim::secs(rng.uniform_u64(1, 90));
    // One op in eight is plant maintenance; the rest advance a job lane.
    if (rng.chance(0.125)) {
      op.lane = kMaint;
      // The && short-circuit keeps the rng stream (and hence every
      // existing golden digest) untouched when crashes are off.
      if (cfg.crashes && rng.chance(0.25)) {
        op.kind = OpKind::CrashRestart;
        op.a = rng.uniform_u64(1, 1ULL << 32);  // torn-tail seed
      } else {
        op.kind = rng.chance(0.75) ? OpKind::Scrub : OpKind::Reconcile;
      }
      c.ops.push_back(op);
      ++emitted;
      continue;
    }
    const unsigned lane = static_cast<unsigned>(rng.uniform_u64(0, lanes - 1));
    LaneState& s = st[lane];
    op.lane = lane;
    if (!s.made) {
      op.kind = OpKind::MakeTree;
      op.a = rng.uniform_u64(2, 6);                    // files
      op.b = (1ULL << rng.uniform_u64(22, 26));        // 4..64 MB each
      s.made = true;
      s.files = op.a;
    } else if (!s.archived) {
      op.kind = OpKind::Archive;
      if (cfg.cancels && rng.chance(0.3)) {
        // Race a cancel against the submit: half the races land in the
        // deferred-launch window (0..3 ticks after submit), half strike
        // seconds later, against a job still queued behind admission.
        op.cancel_after =
            rng.chance(0.5)
                ? static_cast<std::int64_t>(rng.uniform_u64(0, 3))
                : static_cast<std::int64_t>(
                      sim::secs(rng.uniform_u64(1, 30)));
      }
      s.archived = true;
    } else if (!s.migrated && rng.chance(0.7)) {
      op.kind = OpKind::Migrate;
      s.migrated = true;
    } else {
      // Steady state: recalls, deletes, and the occasional re-migrate of
      // files a delete left behind.
      const double roll = rng.uniform();
      if (roll < 0.55) {
        op.kind = OpKind::Restore;
        if (cfg.cancels && rng.chance(0.2)) {
          // Restores queue behind three admission slots when lanes burst,
          // so a cancel seconds later frequently finds the job genuinely
          // Queued — the landing half of the cancel contract.
          op.cancel_after = static_cast<std::int64_t>(
              sim::secs(rng.uniform_u64(1, 20)));
        }
      } else if (roll < 0.85 && s.deletes + 1 < s.files) {
        op.kind = OpKind::DeleteOne;
        op.a = rng.uniform_u64(0, s.files - 1);
        ++s.deletes;
      } else {
        op.kind = OpKind::Migrate;
      }
    }
    c.ops.push_back(op);
    ++emitted;
  }

  if (cfg.faults) {
    fault::RandomFaultConfig fcfg;
    fcfg.drives = 4;
    fcfg.nodes = 4;
    fcfg.cartridges = 6;
    fcfg.servers = 1;
    fcfg.drive_failures = 1 + cfg.ops / 100;
    fcfg.node_crashes = 1 + cfg.ops / 150;
    fcfg.media_errors = cfg.ops / 150;
    fcfg.media_corruptions = cfg.corruptions ? 1 + cfg.ops / 120 : 0;
    fcfg.server_restarts = cfg.ops / 200;
    // Ops are spaced by up to 90 s gaps per lane; spread the adversity
    // across the same stretch of virtual time the campaign occupies.
    fcfg.horizon = sim::minutes(10) + sim::secs(45) * cfg.ops;
    fcfg.min_repair = sim::minutes(1);
    fcfg.max_repair = sim::minutes(5);
    c.fault_plan = fault::FaultPlan::random(fcfg, cfg.seed ^ 0xFA17ULL);
  }
  return c;
}

archive::SystemConfig plant_for(const ChaosCampaign& campaign) {
  const ChaosConfig& cfg = campaign.cfg;
  archive::SystemConfig sys = archive::SystemConfig::small();
  sys.hsm.tape_copies = cfg.tape_copies;
  sys.hsm.server.md_batch_size = cfg.md_batch;
  sys.obs.tracing = cfg.tracing;
  sys.pftool.restartable = true;
  sys.fault_plan = campaign.fault_plan;
  // Job- and unit-level recovery generous enough to ride out every
  // repairable fault window the generator emits.
  fault::RetryPolicy retry;
  retry.max_attempts = 6;
  retry.backoff = sim::secs(5);
  retry.max_backoff = sim::minutes(2);
  if (cfg.crashes || cfg.quiescent_crash) {
    // Crash campaigns run durably: every metadata mutation rides the WAL
    // so power_fail/recover round-trips.  Jitter desynchronizes the herd
    // of relaunches a whole-archive crash creates.
    sys.with_wal();
    retry.jitter = 0.5;
    retry.jitter_seed = cfg.seed ^ 0x1A77ULL;
  }
  sys.with_retry(retry);
  if (cfg.use_sched) {
    sched::SchedConfig sc;
    sc.enabled = true;
    // Tight enough that concurrent lanes actually queue (which is what
    // gives the cancel races and the starvation oracle something to bite).
    sc.max_running_jobs = 3;
    for (unsigned t = 0; t < std::max(1u, cfg.tenants); ++t) {
      sched::TenantQuota q;
      q.weight = 1.0 + static_cast<double>(t % 3);
      // The first tenant is drive-throttled, so recall storms from it
      // contend with maintenance scrubs under quota pressure.
      if (t == 0) q.max_drives = 2;
      sc.tenants["t" + std::to_string(t)] = q;
    }
    sys.sched = sc;
    sys.sched.enabled = true;
  }
  return sys;
}

}  // namespace cpa::check
