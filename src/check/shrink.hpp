// Failure minimization: from a violating campaign to a minimal repro.
//
// A 300-op chaos campaign that trips an oracle is a terrible bug report;
// the three ops that actually matter are a good one.  Because every op
// re-checks its preconditions at execution time and skips when they are
// unmet, *any subset* of a campaign's op list is itself a valid campaign
// — which makes delta-debugging sound: drop a chunk, re-run, keep the
// drop if the violation survives.  Ops shrink first (halving chunk
// sizes, ddmin style), then the fault plan's events get the same
// treatment.  Every probe run is fully deterministic, so the minimal
// campaign reproduces the violation forever.
#pragma once

#include <optional>

#include "check/runner.hpp"

namespace cpa::check {

struct ShrinkResult {
  /// The minimal failing campaign (subset of the input's ops + events).
  ChaosCampaign minimal;
  /// The minimal campaign's failing run (violations, log, digest).
  ChaosResult failure;
  /// Campaign executions spent shrinking.
  unsigned runs = 0;
};

/// Minimizes `campaign` under "still produces at least one violation".
/// Returns nullopt when the campaign does not fail in the first place.
/// `max_runs` bounds the total number of probe executions.
std::optional<ShrinkResult> shrink(const ChaosCampaign& campaign,
                                   const RunOptions& opt = {},
                                   unsigned max_runs = 200);

}  // namespace cpa::check
