// Chaos campaign generation: randomized end-to-end adversity, seeded.
//
// The paper's evidence is observational — 62 production jobs rode out 18
// operation days of drive failures, node crashes and operator restarts.
// A hand-written test can replay one such story; a *generator* can replay
// millions.  This header defines the campaign grammar: a ChaosCampaign is
// a deterministic function of (ChaosConfig, seed) composing mixed-tenant
// job lanes (make-tree / archive / migrate / restore / delete / cancel)
// with a maintenance lane (scrubs, reconciles) and a random FaultPlan of
// drive failures, node crashes, media errors and silent corruption.  The
// runner (runner.hpp) executes a campaign against a live
// CotsParallelArchive in virtual time; the same seed always produces the
// identical campaign, the identical interleaving, and the identical
// digest — FoundationDB-style simulation testing for the archive.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "archive/system.hpp"
#include "fault/plan.hpp"
#include "sched/qos.hpp"
#include "simcore/time.hpp"

namespace cpa::check {

/// Deliberate sabotage the runner applies so the harness can prove it
/// would catch a real bug (and that the shrinker can minimize one).
enum class Doctor : std::uint8_t {
  None,
  /// After the campaign drains, silently rot one live tape segment the
  /// fault plan never touched — a stand-in for a broken repair path that
  /// "fixes" a segment without actually rewriting it.  The fixity
  /// consistency oracle must flag it as undetected corruption.
  BreakScrubRepair,
  /// After the campaign drains, erase one live object's fixity rows — a
  /// stand-in for a repair that forgets to re-record checksums.  The
  /// structural oracle must flag the uncovered tape location.
  DropFixityRow,
};

[[nodiscard]] const char* to_string(Doctor d);

struct ChaosConfig {
  std::uint64_t seed = 1;
  /// Operation budget: the generator emits at most this many ops.
  unsigned ops = 300;
  /// Concurrent job lanes (trees); 0 = derived from `ops`.
  unsigned lanes = 0;
  /// Distinct tenants jobs are spread across (quotas generated).
  unsigned tenants = 3;
  /// Arm a seeded random FaultPlan (drive failures, node crashes, media
  /// errors, server restarts) against the plant.
  bool faults = true;
  /// Include silent tape corruption in the fault plan.  Off for the
  /// fault-free metamorphic twin: corruption legitimately changes the
  /// final archive state (repairs relocate segments, rot can be
  /// unrepairable), so state-equality comparisons exclude it.
  bool corruptions = true;
  /// Emit cancel races against freshly submitted jobs.  Off in
  /// metamorphic state-compare runs: whether a cancel lands depends on
  /// timing, which faults shift.
  bool cancels = true;
  /// Emit crash-restart ops (whole-archive power failure + WAL recovery)
  /// and run the plant with the write-ahead log enabled.  The fault-free
  /// twin keeps them: crash ops are part of the op sequence, so state
  /// equality between the runs exercises recovery itself.
  bool crashes = false;
  /// After the campaign drains (all lanes quiescent, before the final
  /// sweep), power-fail and recover the whole archive once.  The
  /// metamorphic gate: the final state digest must equal the same
  /// campaign's digest without the quiescent crash.
  bool quiescent_crash = false;
  /// Enable the multi-tenant admission scheduler.
  bool use_sched = true;
  /// Record spans so the profiler-conservation oracle can run.
  bool tracing = true;
  /// Second tape copy pool, so corruption is normally repairable.
  unsigned tape_copies = 2;
  /// Metadata batch size for the archive servers' object-DB path; 1 keeps
  /// the legacy stop-and-wait txn chains (bit-identical goldens).  The
  /// knob is plant configuration, not campaign grammar: it never feeds
  /// render(), so the op sequence and replay digests of a (config, seed)
  /// pair are comparable across batch sizes.
  unsigned md_batch = 1;
  Doctor doctor = Doctor::None;

  // Fluent refinement, mirroring SystemConfig/JobSpec.
  ChaosConfig& with_seed(std::uint64_t s) { seed = s; return *this; }
  ChaosConfig& with_ops(unsigned n) { ops = n; return *this; }
  ChaosConfig& with_faults(bool on) { faults = on; return *this; }
  ChaosConfig& with_corruptions(bool on) { corruptions = on; return *this; }
  ChaosConfig& with_cancels(bool on) { cancels = on; return *this; }
  ChaosConfig& with_crashes(bool on) { crashes = on; return *this; }
  ChaosConfig& with_quiescent_crash(bool on) {
    quiescent_crash = on;
    return *this;
  }
  ChaosConfig& with_sched(bool on) { use_sched = on; return *this; }
  ChaosConfig& with_tracing(bool on) { tracing = on; return *this; }
  ChaosConfig& with_md_batch(unsigned n) { md_batch = n; return *this; }
  ChaosConfig& with_doctor(Doctor d) { doctor = d; return *this; }

  /// The fault-free metamorphic twin of this config: same seed, same op
  /// sequence, no faults.  Final archive state must match a faulted run
  /// whenever the faulted run recovered fully.
  [[nodiscard]] ChaosConfig fault_free_twin() const {
    ChaosConfig c = *this;
    c.faults = false;
    c.corruptions = false;
    return c;
  }
};

enum class OpKind : std::uint8_t {
  MakeTree,   // materialize `files` files of ~`bytes` each on scratch
  Archive,    // pfcp scratch -> archive (maybe raced by a cancel)
  Migrate,    // ILM cycle: migrate the lane's resident files to tape
  Restore,    // pfcp archive -> scratch restage (recalls migrated files)
  DeleteOne,  // synchronous_delete of one archived file
  Scrub,      // full-archive fixity scrub (maintenance lane)
  Reconcile,  // orphan tree-walk (maintenance lane)
  /// Whole-archive power failure mid-campaign followed by WAL recovery
  /// (maintenance lane).  `a` carries the seed-derived torn-tail seed.
  CrashRestart,
};

[[nodiscard]] const char* to_string(OpKind k);

struct ChaosOp {
  OpKind kind = OpKind::MakeTree;
  /// Job lane (tree index); Scrub/Reconcile run on the maintenance lane.
  unsigned lane = 0;
  /// Virtual-time gap between the previous op on this lane finishing and
  /// this op starting.
  sim::Tick gap = 0;
  /// MakeTree: file count.  DeleteOne: file index within the tree.
  std::uint64_t a = 0;
  /// MakeTree: per-file size in bytes.
  std::uint64_t b = 0;
  /// Archive only: race a JobHandle::cancel() this many ticks after
  /// submit (0 = same-tick, landing in the deferred-launch window).
  /// Negative = no cancel race.
  std::int64_t cancel_after = -1;

  /// One-line canonical form, stable across platforms (digest input).
  [[nodiscard]] std::string render() const;
};

struct ChaosCampaign {
  ChaosConfig cfg;
  /// Per-lane tenant names ("t0".."tN") and QoS classes.
  std::vector<std::string> lane_tenant;
  std::vector<sched::QosClass> lane_qos;
  /// The op sequence, in generation order.  Lanes execute their ops
  /// sequentially; distinct lanes interleave freely in virtual time.
  std::vector<ChaosOp> ops;
  /// Scripted adversity armed at system construction.
  fault::FaultPlan fault_plan;

  [[nodiscard]] unsigned lane_count() const {
    return static_cast<unsigned>(lane_tenant.size());
  }
  /// Canonical multi-line rendering (ops + plan), the replayable spec.
  [[nodiscard]] std::string render() const;

  /// Deterministic generation: the same config (seed included) always
  /// yields the identical campaign on every platform.
  static ChaosCampaign generate(const ChaosConfig& cfg);
};

/// The plant a campaign runs against: SystemConfig::small() refined with
/// copy pools, tenant quotas, tracing, and the campaign's fault plan.
[[nodiscard]] archive::SystemConfig plant_for(const ChaosCampaign& campaign);

/// FNV-1a 64 over a string: the digest primitive shared by the golden
/// campaign test and the chaos harness (stable across platforms).
[[nodiscard]] std::uint64_t fnv1a64(const std::string& s);

}  // namespace cpa::check
