#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "archive/system.hpp"
#include "obs/profile.hpp"

namespace cpa::check {

std::string Violation::render() const {
  char head[96];
  std::snprintf(head, sizeof(head), "VIOLATION %s @t=%llu: ",
                invariant.c_str(), static_cast<unsigned long long>(at));
  return head + detail;
}

void InvariantRegistry::add_continuous(std::string name, Check fn) {
  continuous_.push_back({std::move(name), std::move(fn)});
}

void InvariantRegistry::add_final(std::string name, Check fn) {
  final_.push_back({std::move(name), std::move(fn)});
}

void InvariantRegistry::run_list(const std::vector<Named>& list,
                                 sim::Tick now) {
  for (const Named& n : list) {
    if (auto diag = n.fn()) {
      violations_.push_back({n.name, std::move(*diag), now});
    }
  }
}

void InvariantRegistry::run_continuous(sim::Tick now) {
  run_list(continuous_, now);
}

void InvariantRegistry::run_final(sim::Tick now) {
  run_list(continuous_, now);
  run_list(final_, now);
}

void InvariantRegistry::report(std::string invariant, std::string detail,
                               sim::Tick at) {
  violations_.push_back({std::move(invariant), std::move(detail), at});
}

std::string InvariantRegistry::render_violations() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += v.render();
    out += '\n';
  }
  return out;
}

namespace {

/// One tape location of an object, for the bidirectional fixity walk.
struct Loc {
  std::uint64_t object_id;
  std::uint64_t cartridge;
  std::uint64_t seq;
};

std::optional<std::string> check_flow_conservation(
    archive::CotsParallelArchive& sys) {
  sim::FlowNetwork& net = sys.net();
  // Incremental rates must match the from-scratch water-filling solve
  // bit-for-bit (both run the same canonical component solver).
  for (const auto& [id, ref_rate] : net.recompute_rates_reference()) {
    const double live = net.flow_rate(sim::FlowId{id});
    if (live != ref_rate) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "flow %llu rate %.17g != reference %.17g",
                    static_cast<unsigned long long>(id), live, ref_rate);
      return std::string(buf);
    }
  }
  // No pool may hand out more than its capacity.
  for (std::size_t i = 0; i < net.pool_count(); ++i) {
    const sim::PoolId id{static_cast<std::uint32_t>(i)};
    const double cap = net.pool_capacity(id);
    if (!std::isfinite(cap)) continue;
    const double alloc = net.pool_allocated(id);
    if (alloc > cap * (1.0 + 1e-9) + 1e-6) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "pool %s allocated %.17g over capacity %.17g",
                    net.pool_name(id).c_str(), alloc, cap);
      return std::string(buf);
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_fs_capacity(pfs::FileSystem& fs) {
  for (const pfs::PoolInfo& p : fs.pools()) {
    if (p.config.capacity_bytes == 0) continue;  // unbounded
    if (p.used_bytes > p.config.capacity_bytes) {
      return fs.name() + " pool " + p.config.name + " used " +
             std::to_string(p.used_bytes) + " > capacity " +
             std::to_string(p.config.capacity_bytes);
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_fixity_consistency(
    archive::CotsParallelArchive& sys,
    const std::vector<std::uint64_t>& corrupt_cartridges) {
  hsm::HsmSystem& hsm = sys.hsm();
  tape::TapeLibrary& lib = sys.library();
  const integrity::FixityDb& db = hsm.fixity_db();
  const std::set<std::uint64_t> rot_ok(corrupt_cartridges.begin(),
                                       corrupt_cartridges.end());

  // Objects -> segments -> rows: every recorded tape location of a live
  // object must exist on tape, carry the recorded checksum, and have a
  // fixity row.  Members store through their aggregate, so only objects
  // that own a segment are walked.
  std::vector<Loc> locs;
  std::string err;
  for (unsigned si = 0; si < hsm.server_count() && err.empty(); ++si) {
    hsm.server(si).for_each_object([&](const hsm::ArchiveObject& obj) {
      if (!err.empty() || obj.is_member() || obj.cartridge_id == 0) return;
      locs.clear();
      locs.push_back({obj.object_id, obj.cartridge_id, obj.tape_seq});
      for (const auto& cp : obj.copies) {
        locs.push_back({obj.object_id, cp.cartridge_id, cp.tape_seq});
      }
      for (const Loc& L : locs) {
        const std::string where = "object " + std::to_string(L.object_id) +
                                  " cart " + std::to_string(L.cartridge) +
                                  " seq " + std::to_string(L.seq);
        tape::Cartridge* cart = lib.cartridge(L.cartridge);
        if (cart == nullptr) {
          err = where + ": cartridge missing";
          return;
        }
        const tape::Segment* seg = cart->segment_by_seq(L.seq);
        if (seg == nullptr || seg->object_id != L.object_id) {
          err = where + ": tape segment missing or owned by another object";
          return;
        }
        const integrity::FixityRow* row =
            db.at_location(L.object_id, L.cartridge);
        if (row == nullptr) {
          err = where + ": no fixity row covers this location";
          return;
        }
        if (row->tape_seq != L.seq || row->length != seg->bytes) {
          err = where + ": fixity row disagrees with the segment";
          return;
        }
        if (row->checksum != seg->fingerprint) {
          err = where + ": recorded checksum != written fingerprint";
          return;
        }
        // Silent rot is only legitimate where the fault plan injected it
        // (and is then either still awaiting detection or already
        // condemned); anywhere else a mismatching fingerprint means the
        // plant corrupted data behind the fixity layer's back.
        if (seg->observed_fingerprint() != row->checksum &&
            row->status == integrity::FixityStatus::Ok &&
            rot_ok.count(L.cartridge) == 0) {
          err = where + ": undetected corruption outside the fault plan";
          return;
        }
      }
    });
  }
  if (!err.empty()) return err;

  // Rows -> objects: every Ok fixity row must describe a live object's
  // current location.  (Delete and reclamation erase/relocate rows
  // transactionally; a stale row is a lost-update bug.)
  db.for_each([&](const integrity::FixityRow& row) {
    if (!err.empty()) return;
    const hsm::ArchiveObject* obj = nullptr;
    for (unsigned si = 0; si < hsm.server_count() && obj == nullptr; ++si) {
      obj = hsm.server(si).object(row.object_id);
    }
    const std::string where = "fixity row " + std::to_string(row.row_id) +
                              " (object " + std::to_string(row.object_id) +
                              ")";
    if (obj == nullptr) {
      err = where + ": object no longer exists";
      return;
    }
    const bool at_primary = obj->cartridge_id == row.cartridge_id &&
                            obj->tape_seq == row.tape_seq;
    const bool at_copy =
        std::any_of(obj->copies.begin(), obj->copies.end(),
                    [&](const hsm::ArchiveObject::Replica& r) {
                      return r.cartridge_id == row.cartridge_id &&
                             r.tape_seq == row.tape_seq;
                    });
    if (!at_primary && !at_copy) {
      err = where + ": names a location the object does not occupy";
      return;
    }
    if (row.status == integrity::FixityStatus::Unrepairable &&
        rot_ok.empty()) {
      err = where + ": unrepairable verdict without any injected corruption";
    }
  });
  if (!err.empty()) return err;
  return std::nullopt;
}

std::optional<std::string> check_profiler_conservation(
    archive::CotsParallelArchive& sys) {
  if (!sys.observer().tracing()) return std::nullopt;
  const obs::Profiler prof(sys.observer().trace());
  if (!prof.conservation_ok()) {
    return std::to_string(prof.violations()) + " of " +
           std::to_string(prof.jobs().size()) +
           " job(s) lost ticks in the bucket decomposition";
  }
  return std::nullopt;
}

std::optional<std::string> check_starvation(archive::CotsParallelArchive& sys,
                                            const OracleInputs& in) {
  sched::AdmissionScheduler* sched = sys.scheduler();
  if (sched == nullptr) return std::nullopt;
  const sim::Tick max_service =
      in.max_service != nullptr ? *in.max_service : 0;
  const unsigned jobs = in.jobs_submitted != nullptr ? *in.jobs_submitted : 0;
  // Once a job's aging boost saturates it outranks any fresh arrival, so
  // its residual wait is at most one service time per job that can still
  // be ahead of it (the bench_fairshare bound).
  const sim::Tick bound = sched->aging_bound() + max_service * jobs;
  if (sched->max_queue_wait() > bound) {
    return "max queue wait " +
           std::to_string(sim::to_seconds(sched->max_queue_wait())) +
           " s exceeds the starvation bound " +
           std::to_string(sim::to_seconds(bound)) + " s";
  }
  return std::nullopt;
}

}  // namespace

void register_standard_oracles(InvariantRegistry& reg,
                               archive::CotsParallelArchive& sys,
                               const OracleInputs& inputs) {
  reg.add_continuous("flow-conservation",
                     [&sys] { return check_flow_conservation(sys); });
  reg.add_continuous("fs-capacity", [&sys]() -> std::optional<std::string> {
    if (auto d = check_fs_capacity(sys.archive_fs())) return d;
    return check_fs_capacity(sys.scratch());
  });
  const std::vector<std::uint64_t> rot = inputs.corrupt_cartridges;
  reg.add_final("fixity-consistency", [&sys, rot] {
    return check_fixity_consistency(sys, rot);
  });
  reg.add_final("profiler-conservation",
                [&sys] { return check_profiler_conservation(sys); });
  reg.add_final("sched-starvation",
                [&sys, inputs] { return check_starvation(sys, inputs); });
}

}  // namespace cpa::check
