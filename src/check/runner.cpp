#include "check/runner.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <memory>
#include <set>

#include "integrity/scrubber.hpp"
#include "simcore/units.hpp"

namespace cpa::check {

std::string ChaosResult::render_violations() const {
  std::string out;
  for (const Violation& v : violations) {
    out += v.render();
    out += '\n';
  }
  return out;
}

std::string repro_line(const ChaosConfig& cfg) {
  std::string line = "cpa_check --seed=" + std::to_string(cfg.seed) +
                     " --ops=" + std::to_string(cfg.ops);
  if (!cfg.faults) line += " --no-faults";
  if (!cfg.corruptions) line += " --no-corruptions";
  if (!cfg.cancels) line += " --no-cancels";
  if (cfg.crashes) line += " --crashes";
  if (cfg.quiescent_crash) line += " --quiescent-crash";
  if (cfg.md_batch != 1) line += " --md-batch=" + std::to_string(cfg.md_batch);
  // The CLI vocabulary (--doctor=scrub|fixity), not the long enum names:
  // the whole point of this line is that it pastes back into a shell.
  if (cfg.doctor == Doctor::BreakScrubRepair) line += " --doctor=scrub";
  if (cfg.doctor == Doctor::DropFixityRow) line += " --doctor=fixity";
  line += " --shrink";
  return line;
}

namespace {

/// SplitMix64-style mixer: deterministic per-file content tags.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t x =
      a * 0x9E3779B97F4A7C15ULL + b * 0xBF58476D1CE4E5B9ULL + c + 1;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

enum class Restored : std::uint8_t { None, Ok, Lost };

struct FileModel {
  std::uint64_t size = 0;
  std::uint64_t tag = 0;
  bool deleted = false;
  Restored restored = Restored::None;
};

struct Lane {
  std::string src;  // scratch tree root
  std::string dst;  // archive tree root
  std::vector<FileModel> files;
  std::vector<const ChaosOp*> ops;  // this lane's slice, in order
  std::size_t next = 0;
  bool made = false;
  bool archived = false;
  unsigned restores = 0;
};

class Runner {
 public:
  Runner(const ChaosCampaign& c, const RunOptions& opt)
      : c_(c), opt_(opt), sys_(plant_for(c)) {}

  ChaosResult run();

 private:
  // --- plumbing -----------------------------------------------------------
  void logf(const char* fmt, ...) __attribute__((format(printf, 2, 3)));
  [[nodiscard]] sim::Tick now() { return sys_.sim().now(); }
  void setup();
  /// Schedules lane `l`'s next op after its gap; no-op once exhausted.
  void advance(unsigned l);
  void exec(unsigned l, const ChaosOp& op, std::size_t idx);

  // --- op handlers --------------------------------------------------------
  void op_make_tree(unsigned l, const ChaosOp& op);
  void op_archive(unsigned l, const ChaosOp& op, std::int64_t cancel_after,
                  unsigned tries_left);
  void op_migrate(unsigned l);
  void op_restore(unsigned l, const ChaosOp& op);
  void submit_restore(unsigned l, const std::string& stage,
                      std::int64_t cancel_after);
  void op_delete(unsigned l, const ChaosOp& op);
  void op_scrub();
  void op_reconcile();
  void op_crash(const ChaosOp& op);
  /// power_fail + recover; `tail` runs once recovery completes.
  void crash_and_recover(std::uint64_t tear_seed, std::function<void()> tail);

  // --- end-of-run oracles -------------------------------------------------
  void verify_restore(unsigned l, const std::string& stage,
                      const pftool::JobReport& rep, bool final_sweep);
  void final_sweep();
  void apply_doctor();
  void build_state(ChaosResult& out);
  void note_service(const pftool::JobReport& rep);

  const ChaosCampaign& c_;
  RunOptions opt_;
  archive::CotsParallelArchive sys_;
  InvariantRegistry reg_;
  std::unique_ptr<CheckProbe> probe_;
  std::vector<Lane> lanes_;  // job lanes + maintenance lane at the back
  bool scrub_running_ = false;
  std::string log_;
  unsigned executed_ = 0;
  unsigned skipped_ = 0;
  unsigned submitted_ = 0;
  unsigned cancels_landed_ = 0;
  sim::Tick max_service_ = 0;
  bool fully_recovered_ = true;
};

void Runner::logf(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  char head[48];
  std::snprintf(head, sizeof(head), "t=%llu ",
                static_cast<unsigned long long>(now()));
  log_ += head;
  log_ += buf;
  log_ += '\n';
}

void Runner::note_service(const pftool::JobReport& rep) {
  if (rep.finished > rep.started) {
    max_service_ = std::max(max_service_, rep.finished - rep.started);
  }
}

void Runner::setup() {
  const unsigned n = c_.lane_count();
  lanes_.resize(n + 1);  // [n] = maintenance lane
  for (unsigned l = 0; l < n; ++l) {
    lanes_[l].src = "/chaos/lane" + std::to_string(l);
    lanes_[l].dst = "/arch/lane" + std::to_string(l);
    pfs::Rule rule;
    rule.name = "lane" + std::to_string(l);
    rule.action = pfs::Rule::Action::List;
    rule.where = {pfs::Condition::path_glob(lanes_[l].dst + "/*"),
                  pfs::Condition::dmapi_is(pfs::DmapiState::Resident)};
    sys_.policy().add_rule(rule);
  }
  for (const ChaosOp& op : c_.ops) {
    const unsigned l = std::min(op.lane, n);  // clamp strays to maintenance
    lanes_[l].ops.push_back(&op);
  }

  OracleInputs in;
  for (const fault::FaultEvent& ev : c_.fault_plan.events) {
    if (ev.kind == fault::FaultKind::Corrupt) {
      in.corrupt_cartridges.push_back(ev.index);
    }
  }
  in.max_service = &max_service_;
  in.jobs_submitted = &submitted_;
  register_standard_oracles(reg_, sys_, in);
  // Wrap the observer the system installed, so metrics/traces keep
  // flowing while the continuous oracles watch from inside the loop.
  probe_ = std::make_unique<CheckProbe>(&sys_.observer(), reg_,
                                        opt_.check_every);
  sys_.sim().set_probe(probe_.get());
}

void Runner::advance(unsigned l) {
  Lane& L = lanes_[l];
  if (L.next >= L.ops.size()) return;
  const ChaosOp& op = *L.ops[L.next];
  const std::size_t idx = L.next++;
  sys_.sim().after(op.gap, [this, l, &op, idx] { exec(l, op, idx); });
}

void Runner::exec(unsigned l, const ChaosOp& op, std::size_t idx) {
  logf("lane%u op%zu %s", l, idx, to_string(op.kind));
  switch (op.kind) {
    case OpKind::MakeTree: op_make_tree(l, op); return;
    case OpKind::Archive: op_archive(l, op, op.cancel_after, 5); return;
    case OpKind::Migrate: op_migrate(l); return;
    case OpKind::Restore: op_restore(l, op); return;
    case OpKind::DeleteOne: op_delete(l, op); return;
    case OpKind::Scrub: op_scrub(); return;
    case OpKind::Reconcile: op_reconcile(); return;
    case OpKind::CrashRestart: op_crash(op); return;
  }
}

void Runner::op_make_tree(unsigned l, const ChaosOp& op) {
  Lane& L = lanes_[l];
  if (L.made) {
    logf("lane%u make-tree skipped (already made)", l);
    ++skipped_;
    advance(l);
    return;
  }
  for (std::uint64_t k = 0; k < op.a; ++k) {
    const std::uint64_t tag = mix(c_.cfg.seed, l, k);
    const pfs::Errc e = sys_.make_file(
        sys_.scratch(), L.src + "/f" + std::to_string(k), op.b, tag);
    if (e != pfs::Errc::Ok) {
      logf("lane%u make-tree f%llu: %s", l,
           static_cast<unsigned long long>(k), pfs::to_string(e));
    }
    L.files.push_back({op.b, tag, false, Restored::None});
  }
  L.made = true;
  ++executed_;
  logf("lane%u made %zu files x %llu B", l, L.files.size(),
       static_cast<unsigned long long>(op.b));
  advance(l);
}

void Runner::op_archive(unsigned l, const ChaosOp& op,
                        std::int64_t cancel_after, unsigned tries_left) {
  Lane& L = lanes_[l];
  if (!L.made || L.archived) {
    logf("lane%u archive skipped (%s)", l, L.made ? "already archived"
                                                  : "no tree");
    ++skipped_;
    advance(l);
    return;
  }
  archive::JobSpec spec =
      archive::JobSpec::pfcp(L.src, L.dst)
          .with_tenant(c_.lane_tenant[l])
          .with_qos(c_.lane_qos[l])
          .with_restartable(true)
          .with_verified(true)
          .with_retry(sys_.config().pftool.retry);
  archive::JobHandle h = sys_.submit(std::move(spec));
  ++submitted_;
  const ChaosOp* opp = &op;
  h.on_done([this, l, opp, h, tries_left](const pftool::JobReport& rep) mutable {
    note_service(rep);
    switch (h.state()) {
      case archive::JobState::Cancelled:
        // Cancel-once-then-go: the race landed, so resubmit without it —
        // the lane's final state is the same whichever way the race went.
        ++cancels_landed_;
        logf("lane%u archive cancelled in queue; resubmitting", l);
        op_archive(l, *opp, /*cancel_after=*/-1, tries_left);
        return;
      case archive::JobState::Rejected:
        logf("lane%u archive rejected (queue full)", l);
        if (tries_left > 0) {
          sys_.sim().after(sim::minutes(1), [this, l, opp, tries_left] {
            op_archive(l, *opp, /*cancel_after=*/-1, tries_left - 1);
          });
          return;
        }
        fully_recovered_ = false;
        advance(l);
        return;
      case archive::JobState::Succeeded:
        lanes_[l].archived = true;
        ++executed_;
        logf("lane%u archived files=%llu bytes=%llu attempts=%u", l,
             static_cast<unsigned long long>(rep.files_copied),
             static_cast<unsigned long long>(rep.bytes_copied),
             h.attempts());
        advance(l);
        return;
      default:  // Failed
        fully_recovered_ = false;
        ++executed_;
        logf("lane%u archive failed (failed=%llu attempts=%u)", l,
             static_cast<unsigned long long>(rep.files_failed),
             h.attempts());
        advance(l);
        return;
    }
  });
  if (cancel_after >= 0 && !h.done()) {
    sys_.sim().after(static_cast<sim::Tick>(cancel_after), [this, h]() mutable {
      if (!h.cancel()) {
        logf("cancel race lost: job %llu already launched or done",
             static_cast<unsigned long long>(h.id()));
      }
    });
  }
}

void Runner::op_migrate(unsigned l) {
  Lane& L = lanes_[l];
  if (!L.archived) {
    logf("lane%u migrate skipped (not archived)", l);
    ++skipped_;
    advance(l);
    return;
  }
  ++executed_;
  sys_.run_migration_cycle(
      "lane" + std::to_string(l), "g" + std::to_string(l % 2),
      [this, l](const hsm::MigrateReport& r) {
        logf("lane%u migrated files=%u failed=%u retries=%u", l,
             r.files_migrated, r.files_failed, r.retries);
        advance(l);
      });
}

void Runner::op_restore(unsigned l, const ChaosOp& op) {
  Lane& L = lanes_[l];
  if (!L.archived) {
    logf("lane%u restore skipped (not archived)", l);
    ++skipped_;
    advance(l);
    return;
  }
  const std::string stage =
      "/restage/lane" + std::to_string(l) + "_" + std::to_string(L.restores++);
  ++executed_;
  submit_restore(l, stage, op.cancel_after);
}

void Runner::submit_restore(unsigned l, const std::string& stage,
                            std::int64_t cancel_after) {
  archive::JobSpec spec =
      archive::JobSpec::pfcp_restore(lanes_[l].dst, stage)
          .with_tenant(c_.lane_tenant[l])
          .with_qos(c_.lane_qos[l])
          .with_verified(true)
          .with_retry(sys_.config().pftool.retry);
  archive::JobHandle h = sys_.submit(std::move(spec));
  ++submitted_;
  h.on_done([this, l, stage, h](const pftool::JobReport& rep) mutable {
    note_service(rep);
    const archive::JobState s = h.state();
    if (s == archive::JobState::Cancelled) {
      // Cancel-once-then-go, same as archives: the lane still gets its
      // restore, so the final model state is timing-independent.
      ++cancels_landed_;
      logf("lane%u restore cancelled in queue; resubmitting", l);
      submit_restore(l, stage, /*cancel_after=*/-1);
      return;
    }
    if (s == archive::JobState::Rejected) {
      logf("lane%u restore rejected (queue full)", l);
      fully_recovered_ = false;
      advance(l);
      return;
    }
    logf("lane%u restore %s -> %s copied=%llu failed=%llu unrepairable=%llu",
         l, stage.c_str(), archive::to_string(s),
         static_cast<unsigned long long>(rep.files_copied),
         static_cast<unsigned long long>(rep.files_failed),
         static_cast<unsigned long long>(rep.files_unrepairable));
    if (s == archive::JobState::Failed) fully_recovered_ = false;
    verify_restore(l, stage, rep, /*final_sweep=*/false);
    advance(l);
  });
  if (cancel_after >= 0 && !h.done()) {
    sys_.sim().after(static_cast<sim::Tick>(cancel_after), [this, h]() mutable {
      if (!h.cancel()) {
        logf("cancel race lost: job %llu already launched or done",
             static_cast<unsigned long long>(h.id()));
      }
    });
  }
}

void Runner::op_delete(unsigned l, const ChaosOp& op) {
  Lane& L = lanes_[l];
  if (!L.archived || L.files.empty()) {
    logf("lane%u delete skipped (not archived)", l);
    ++skipped_;
    advance(l);
    return;
  }
  // op.a picks a starting index; scan for a still-live file.
  std::size_t idx = static_cast<std::size_t>(op.a % L.files.size());
  bool found = false;
  for (std::size_t probe = 0; probe < L.files.size(); ++probe) {
    const std::size_t i = (idx + probe) % L.files.size();
    if (!L.files[i].deleted) {
      idx = i;
      found = true;
      break;
    }
  }
  if (!found) {
    logf("lane%u delete skipped (no live files)", l);
    ++skipped_;
    advance(l);
    return;
  }
  ++executed_;
  const std::string path = L.dst + "/f" + std::to_string(idx);
  sys_.hsm().synchronous_delete(path, [this, l, idx,
                                       path](pfs::Errc e) {
    if (e == pfs::Errc::Ok) {
      lanes_[l].files[idx].deleted = true;
      logf("lane%u deleted %s", l, path.c_str());
    } else {
      logf("lane%u delete %s failed: %s", l, path.c_str(), pfs::to_string(e));
      // A power failure mid-delete answers Stale with the outcome unknown
      // (the unlink may have landed just before the crash).  Resolve the
      // ambiguity the way a real operator would: probe the namespace.
      if (e == pfs::Errc::Stale && !sys_.archive_fs().exists(path)) {
        lanes_[l].files[idx].deleted = true;
        logf("lane%u delete %s had landed before the crash", l, path.c_str());
      }
    }
    advance(l);
  });
}

void Runner::op_scrub() {
  const unsigned m = c_.lane_count();  // maintenance lane index
  if (scrub_running_) {
    logf("scrub skipped (one already running)");
    ++skipped_;
    advance(m);
    return;
  }
  scrub_running_ = true;
  ++executed_;
  ++submitted_;  // holds drives like a job; count it for the bound
  sys_.hsm().scrub(
      integrity::ScrubConfig().with_tenant("maint"),
      [this, m](const integrity::ScrubReport& r) {
        scrub_running_ = false;
        logf("scrub scanned=%llu mismatches=%llu repaired=%llu "
             "unrepairable=%llu read_errors=%llu",
             static_cast<unsigned long long>(r.segments_scanned),
             static_cast<unsigned long long>(r.mismatches),
             static_cast<unsigned long long>(r.repaired()),
             static_cast<unsigned long long>(r.unrepairable),
             static_cast<unsigned long long>(r.read_errors));
        if (!c_.cfg.corruptions && r.mismatches > 0) {
          reg_.report("no-lost-files",
                      "scrub found " + std::to_string(r.mismatches) +
                          " rotten segment(s) but no corruption was injected",
                      now());
        }
        advance(m);
      });
}

void Runner::op_reconcile() {
  const unsigned m = c_.lane_count();
  ++executed_;
  sys_.hsm().reconcile(false, [this, m](const hsm::ReconcileReport& r) {
    logf("reconcile walked=%llu orphans=%llu",
         static_cast<unsigned long long>(r.inodes_walked),
         static_cast<unsigned long long>(r.orphans_found));
    advance(m);
  });
}

void Runner::op_crash(const ChaosOp& op) {
  const unsigned m = c_.lane_count();
  if (sys_.durable() == nullptr) {
    // Shrunk/edited configs can carry crash ops into a WAL-less plant;
    // treat them like any other precondition miss.
    logf("crash-restart skipped (WAL disabled)");
    ++skipped_;
    advance(m);
    return;
  }
  ++executed_;
  crash_and_recover(op.a, [this, m] { advance(m); });
}

void Runner::crash_and_recover(std::uint64_t tear_seed,
                               std::function<void()> tail) {
  logf("power-fail tear_seed=%016llx",
       static_cast<unsigned long long>(tear_seed));
  sys_.power_fail(tear_seed);
  sys_.recover([this, tail = std::move(tail)](
                   const archive::CotsParallelArchive::RecoveryReport& r) {
    logf("recovered replayed=%llu orphan_segs=%llu adopted=%llu "
         "orphan_fixity=%llu remarked=%llu relaunched=%llu",
         static_cast<unsigned long long>(r.wal.replayed_records),
         static_cast<unsigned long long>(r.reconcile.orphan_segments),
         static_cast<unsigned long long>(r.reconcile.adopted_segments),
         static_cast<unsigned long long>(r.reconcile.orphan_fixity_rows),
         static_cast<unsigned long long>(r.reconcile.premigrated_remarked),
         static_cast<unsigned long long>(r.jobs_relaunched));
    // A migrated stub whose catalog object vanished is an unrestorable
    // file the plant acked as durable — exactly what the WAL barrier
    // (fsync before punch) exists to make impossible.
    if (r.reconcile.stub_violations > 0) {
      reg_.report("no-lost-files",
                  std::to_string(r.reconcile.stub_violations) +
                      " migrated stub(s) lost their catalog object across "
                      "the crash (durability barrier breached)",
                  now());
    }
    tail();
  });
}

void Runner::verify_restore(unsigned l, const std::string& stage,
                            const pftool::JobReport& rep, bool final_sweep) {
  Lane& L = lanes_[l];
  std::uint64_t missing = 0;
  std::uint64_t mismatched = 0;
  for (std::size_t k = 0; k < L.files.size(); ++k) {
    FileModel& f = L.files[k];
    if (f.deleted) continue;
    const auto got =
        sys_.scratch().read_tag(stage + "/f" + std::to_string(k));
    if (!got.ok()) {
      ++missing;
      if (final_sweep) f.restored = Restored::Lost;
      continue;
    }
    if (got.value() != f.tag) {
      ++mismatched;
      if (final_sweep) f.restored = Restored::Lost;
      continue;
    }
    if (final_sweep) f.restored = Restored::Ok;
  }
  if (rep.files_failed > 0 || rep.files_unrepairable > 0) {
    fully_recovered_ = false;
  }
  // Loud loss (the job reported the failure) is adversity; *silent* loss
  // — fewer verified files than the report owns up to — is the bug this
  // oracle exists for.
  if (missing > rep.files_failed) {
    reg_.report("no-lost-files",
                "lane " + std::to_string(l) + " restore " + stage + ": " +
                    std::to_string(missing) + " file(s) missing but only " +
                    std::to_string(rep.files_failed) + " reported failed",
                now());
  }
  if (mismatched > 0) {
    reg_.report("no-lost-files",
                "lane " + std::to_string(l) + " restore " + stage + ": " +
                    std::to_string(mismatched) +
                    " file(s) restored with wrong content past verification",
                now());
  }
  if (!c_.cfg.corruptions && rep.files_unrepairable > 0) {
    reg_.report("no-lost-files",
                "lane " + std::to_string(l) + " restore " + stage + ": " +
                    std::to_string(rep.files_unrepairable) +
                    " unrepairable file(s) but no corruption was injected",
                now());
  }
}

void Runner::final_sweep() {
  for (unsigned l = 0; l < c_.lane_count(); ++l) {
    Lane& L = lanes_[l];
    if (!L.archived) continue;
    const bool any_live = std::any_of(L.files.begin(), L.files.end(),
                                      [](const FileModel& f) {
                                        return !f.deleted;
                                      });
    const bool any_deleted = std::any_of(L.files.begin(), L.files.end(),
                                         [](const FileModel& f) {
                                           return f.deleted;
                                         });
    if (any_live) {
      const std::string stage = "/final/lane" + std::to_string(l);
      archive::JobSpec spec =
          archive::JobSpec::pfcp_restore(L.dst, stage)
              .with_tenant(c_.lane_tenant[l])
              .with_qos(c_.lane_qos[l])
              .with_verified(true)
              .with_retry(sys_.config().pftool.retry);
      archive::JobHandle h = sys_.submit(std::move(spec));
      ++submitted_;
      h.on_done([this, l, stage, h](const pftool::JobReport& rep) mutable {
        note_service(rep);
        if (h.state() == archive::JobState::Failed) fully_recovered_ = false;
        logf("lane%u final restore %s failed=%llu unrepairable=%llu", l,
             archive::to_string(h.state()),
             static_cast<unsigned long long>(rep.files_failed),
             static_cast<unsigned long long>(rep.files_unrepairable));
        verify_restore(l, stage, rep, /*final_sweep=*/true);
      });
    }
    if (!any_deleted && !L.files.empty()) {
      // Clean lane: the archived tree must still be byte-identical to the
      // source, across every crash, retry and journal resume the campaign
      // threw at it.
      archive::JobSpec spec = archive::JobSpec::pfcm(L.src, L.dst)
                                  .with_tenant(c_.lane_tenant[l])
                                  .with_qos(c_.lane_qos[l]);
      archive::JobHandle h = sys_.submit(std::move(spec));
      ++submitted_;
      h.on_done([this, l, h](const pftool::JobReport& rep) mutable {
        note_service(rep);
        logf("lane%u pfcm compared=%llu mismatched=%llu", l,
             static_cast<unsigned long long>(rep.files_compared),
             static_cast<unsigned long long>(rep.files_mismatched));
        if (rep.files_mismatched > 0) {
          reg_.report("byte-exact-archive",
                      "lane " + std::to_string(l) + ": pfcm found " +
                          std::to_string(rep.files_mismatched) +
                          " mismatched file(s) after a clean campaign",
                      now());
        }
      });
    }
    // Deleted files must be gone from the archive namespace.
    for (std::size_t k = 0; k < L.files.size(); ++k) {
      if (!L.files[k].deleted) continue;
      const std::string path = L.dst + "/f" + std::to_string(k);
      if (sys_.archive_fs().exists(path)) {
        reg_.report("no-lost-files",
                    "lane " + std::to_string(l) + ": deleted file " + path +
                        " still present in the archive",
                    now());
      }
    }
  }
}

void Runner::apply_doctor() {
  switch (c_.cfg.doctor) {
    case Doctor::None:
      return;
    case Doctor::BreakScrubRepair: {
      std::set<std::uint64_t> rot;
      for (const fault::FaultEvent& ev : c_.fault_plan.events) {
        if (ev.kind == fault::FaultKind::Corrupt) rot.insert(ev.index);
      }
      tape::Cartridge* victim = nullptr;
      sys_.library().for_each_cartridge([&](tape::Cartridge& cart) {
        if (victim != nullptr || rot.count(cart.id()) != 0) return;
        for (const tape::Segment& s : cart.segments()) {
          if (s.object_id != 0 && !s.corrupted) {
            victim = &cart;
            return;
          }
        }
      });
      if (victim == nullptr) {
        logf("doctor: no live segment to rot");
        return;
      }
      const std::uint64_t n = victim->corrupt_random_segments(1, 0xD0C7);
      logf("doctor: silently rotted %llu segment(s) on cartridge %llu",
           static_cast<unsigned long long>(n),
           static_cast<unsigned long long>(victim->id()));
      return;
    }
    case Doctor::DropFixityRow: {
      std::uint64_t obj = 0;
      for (unsigned si = 0; si < sys_.hsm().server_count() && obj == 0;
           ++si) {
        sys_.hsm().server(si).for_each_object(
            [&](const hsm::ArchiveObject& o) {
              if (obj == 0 && !o.is_member() && o.cartridge_id != 0) {
                obj = o.object_id;
              }
            });
      }
      if (obj == 0) {
        logf("doctor: no archived object to strip");
        return;
      }
      sys_.hsm().fixity_db().erase_object(obj);
      logf("doctor: erased fixity rows of object %llu",
           static_cast<unsigned long long>(obj));
      return;
    }
  }
}

void Runner::build_state(ChaosResult& out) {
  std::string s;
  for (unsigned l = 0; l < c_.lane_count(); ++l) {
    const Lane& L = lanes_[l];
    s += "lane " + std::to_string(l) + " tenant=" + c_.lane_tenant[l] +
         " archived=" + (L.archived ? "1" : "0") + "\n";
    for (std::size_t k = 0; k < L.files.size(); ++k) {
      const FileModel& f = L.files[k];
      const char* r = f.restored == Restored::Ok     ? "ok"
                      : f.restored == Restored::Lost ? "lost"
                                                     : "none";
      char line[128];
      std::snprintf(line, sizeof(line),
                    "  f%zu size=%llu tag=%016llx %s restored=%s\n", k,
                    static_cast<unsigned long long>(f.size),
                    static_cast<unsigned long long>(f.tag),
                    f.deleted ? "deleted" : "live", r);
      s += line;
    }
  }
  s += std::string("recovered=") + (fully_recovered_ ? "1" : "0") + "\n";
  out.state = std::move(s);
  out.state_digest = fnv1a64(out.state);
}

ChaosResult Runner::run() {
  setup();
  for (unsigned l = 0; l <= c_.lane_count(); ++l) advance(l);
  sys_.sim().run();
  const sim::Tick drained = now();
  if (c_.cfg.quiescent_crash && sys_.durable() != nullptr) {
    // Metamorphic gate: a power failure at quiescence followed by WAL
    // recovery must leave a state digest equal to the same campaign's
    // digest without the crash.
    logf("campaign drained; quiescent crash");
    crash_and_recover(c_.cfg.seed ^ 0x0E5CULL, [this] { final_sweep(); });
  } else {
    logf("campaign drained; final sweep");
    final_sweep();
  }
  sys_.sim().run();
  apply_doctor();
  reg_.run_final(now());
  sys_.snapshot_net_metrics();
  if (!opt_.save_trace.empty() && sys_.observer().tracing()) {
    sys_.observer().trace().save(opt_.save_trace);
  }

  ChaosResult out;
  out.drained_at = drained;
  out.violations = reg_.violations();
  out.fully_recovered = fully_recovered_;
  out.ops_executed = executed_;
  out.ops_skipped = skipped_;
  out.jobs_submitted = submitted_;
  out.cancels_landed = cancels_landed_;
  build_state(out);
  log_ += out.state;
  for (const Violation& v : out.violations) {
    log_ += v.render();
    log_ += '\n';
  }
  out.log = std::move(log_);
  out.digest = fnv1a64(c_.render() + out.log);
  return out;
}

}  // namespace

ChaosResult run_campaign(const ChaosCampaign& campaign,
                         const RunOptions& opt) {
  Runner r(campaign, opt);
  return r.run();
}

ChaosResult run_chaos(const ChaosConfig& cfg, const RunOptions& opt) {
  const ChaosCampaign campaign = ChaosCampaign::generate(cfg);
  return run_campaign(campaign, opt);
}

}  // namespace cpa::check
