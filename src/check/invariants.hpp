// Cross-subsystem invariant oracles, checked continuously and at drain.
//
// Each subsystem's own tests pin its local contract; what nothing pinned
// before this harness is the *seams* — fixity rows vs tape segments vs
// server objects, scheduler waits vs the aging bound, incremental flow
// rates vs the water-filling reference, profiler buckets vs wall-clock.
// An InvariantRegistry holds named checks over a live system; continuous
// checks run on a budget from inside the event loop (threaded through the
// existing SimProbe hook, see CheckProbe), final checks run once after the
// campaign drains.  A check returns std::nullopt when the invariant holds
// or a one-line diagnostic when it does not; every diagnostic becomes a
// Violation with the virtual time it was observed at.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "simcore/probe.hpp"
#include "simcore/time.hpp"

namespace cpa::archive {
class CotsParallelArchive;
}

namespace cpa::check {

struct Violation {
  std::string invariant;
  std::string detail;
  sim::Tick at = 0;

  [[nodiscard]] std::string render() const;
};

class InvariantRegistry {
 public:
  /// nullopt = invariant holds; a string = one-line diagnostic.
  using Check = std::function<std::optional<std::string>()>;

  /// Continuous checks run every `every_events` fired events (and once at
  /// drain); keep them side-effect free and cheap-ish.
  void add_continuous(std::string name, Check fn);
  /// Final checks run once, after the campaign drains.
  void add_final(std::string name, Check fn);

  /// Runs every continuous check; records violations.  `now` stamps them.
  void run_continuous(sim::Tick now);
  /// Runs every final check (continuous ones too, one last time).
  void run_final(sim::Tick now);

  /// Records an externally observed violation (the runner's end-to-end
  /// oracles — restore verification, metamorphic comparisons — live in
  /// the runner but report through the registry).
  void report(std::string invariant, std::string detail, sim::Tick at);

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] std::string render_violations() const;

 private:
  struct Named {
    std::string name;
    Check fn;
  };
  void run_list(const std::vector<Named>& list, sim::Tick now);

  std::vector<Named> continuous_;
  std::vector<Named> final_;
  std::vector<Violation> violations_;
};

/// Event-loop hook: forwards every probe callback to the observer already
/// installed (so metrics and traces keep working) and triggers the
/// registry's continuous checks every `every_events` fired events.  This
/// is how the oracles watch the run from the inside without the runner
/// hand-stepping the simulation.
class CheckProbe final : public sim::SimProbe {
 public:
  CheckProbe(sim::SimProbe* inner, InvariantRegistry& reg,
             std::uint64_t every_events)
      : inner_(inner), reg_(reg), every_(every_events ? every_events : 1) {}

  void on_event_fired(sim::Tick at) override {
    if (inner_ != nullptr) inner_->on_event_fired(at);
    if (++fired_ % every_ == 0) reg_.run_continuous(at);
  }
  void on_event_cancelled(sim::Tick at) override {
    if (inner_ != nullptr) inner_->on_event_cancelled(at);
  }

 private:
  sim::SimProbe* inner_;
  InvariantRegistry& reg_;
  std::uint64_t every_;
  std::uint64_t fired_ = 0;
};

/// Registers the standard cross-subsystem oracles against a live system:
///
///   flow-conservation   incremental rates == water-filling reference,
///                       exactly, and no pool over capacity (continuous)
///   fs-capacity         no file-system pool charged past capacity
///                       (continuous)
///   fixity-consistency  fixity rows <-> server objects <-> tape segments
///                       agree; on-tape fingerprints match recorded
///                       checksums except where the fault plan injected
///                       corruption that is still awaiting detection, and
///                       rows marked Unrepairable were reported (final)
///   profiler-conservation  every job's bucket decomposition sums to its
///                       wall-clock (final; tracing runs only)
///   sched-starvation    max queue wait <= aging bound + one service time
///                       per submitted job (final; sched runs only)
///
/// `corrupt_cartridges` names the cartridges the fault plan rots (their
/// segments may legitimately mismatch until a scrub or recall heals or
/// condemns them); `max_service` and `jobs_submitted` feed the starvation
/// bound and are read at final-check time through the references.
struct OracleInputs {
  std::vector<std::uint64_t> corrupt_cartridges;
  const sim::Tick* max_service = nullptr;
  const unsigned* jobs_submitted = nullptr;
};

void register_standard_oracles(InvariantRegistry& reg,
                               archive::CotsParallelArchive& sys,
                               const OracleInputs& inputs);

}  // namespace cpa::check
