// Campaign execution: one ChaosCampaign against one live plant.
//
// The runner turns a campaign's op list into interleaved per-lane chains
// of real API calls (submit / run_migration_cycle / scrub / delete) in
// virtual time, wires the InvariantRegistry's continuous oracles into the
// event loop through a CheckProbe, and closes the run with the end-to-end
// oracles the registry cannot see from the inside: a verified restore of
// every lane (no-lost-files), a byte-exact pfcm of every clean lane (the
// kill-and-restart / RestartJournal oracle — node crashes forced journal
// resumes mid-campaign), and the optional Doctor sabotage that proves the
// oracles would catch a real bug.  Everything the run does is appended to
// a canonical log; fnv1a64(campaign + log) is the campaign digest that
// same-seed replays must reproduce bit-for-bit.
#pragma once

#include <cstdint>
#include <string>

#include "check/campaign.hpp"
#include "check/invariants.hpp"

namespace cpa::check {

struct RunOptions {
  /// Save the observer's span trace here after the run (pfprof input).
  std::string save_trace;
  /// Continuous-oracle budget: run them every this many fired events.
  std::uint64_t check_every = 2048;
};

struct ChaosResult {
  /// Everything the run did, in execution order (deterministic).
  std::string log;
  /// fnv1a64(campaign.render() + log): the replay-identity digest.
  std::uint64_t digest = 0;
  /// Time-free final-state rendering (per-file fate, restore verdicts);
  /// comparable across a faulted run and its fault-free twin.
  std::string state;
  std::uint64_t state_digest = 0;
  std::vector<Violation> violations;
  /// True when every job succeeded and nothing was declared unrepairable
  /// or failed — the precondition for the metamorphic state comparison.
  bool fully_recovered = true;
  unsigned ops_executed = 0;
  unsigned ops_skipped = 0;
  unsigned jobs_submitted = 0;
  unsigned cancels_landed = 0;
  sim::Tick drained_at = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string render_violations() const;
};

/// Executes a campaign (any op subset of one — the shrinker relies on
/// every op re-checking its preconditions and skipping when unmet).
ChaosResult run_campaign(const ChaosCampaign& campaign,
                         const RunOptions& opt = {});

/// generate + run in one stroke.
ChaosResult run_chaos(const ChaosConfig& cfg, const RunOptions& opt = {});

/// The copy-pasteable reproduction command for a config.
[[nodiscard]] std::string repro_line(const ChaosConfig& cfg);

}  // namespace cpa::check
