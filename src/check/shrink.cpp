#include "check/shrink.hpp"

#include <algorithm>
#include <utility>

namespace cpa::check {

namespace {

/// One probe execution; records the failing result when it fails.
bool fails(const ChaosCampaign& c, const RunOptions& opt, unsigned& runs,
           ChaosResult& out) {
  ++runs;
  ChaosResult r = run_campaign(c, opt);
  if (r.ok()) return false;
  out = std::move(r);
  return true;
}

/// ddmin-lite over one sequence: repeatedly tries dropping contiguous
/// chunks (size n/2, then n/4, ... then 1), keeping any drop that still
/// fails.  `erase(campaign, start, len)` must remove the range from the
/// candidate's sequence; `size(campaign)` reports its current length.
template <typename SizeFn, typename EraseFn>
void reduce(ChaosCampaign& cur, ChaosResult& fail, unsigned& runs,
            unsigned max_runs, const RunOptions& opt, SizeFn size,
            EraseFn erase) {
  std::size_t chunk = size(cur) / 2;
  while (chunk >= 1 && runs < max_runs) {
    std::size_t start = 0;
    while (start < size(cur) && runs < max_runs) {
      ChaosCampaign cand = cur;
      const std::size_t len = std::min(chunk, size(cand) - start);
      erase(cand, start, len);
      if (fails(cand, opt, runs, fail)) {
        cur = std::move(cand);  // keep the drop; retry the same offset
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
    chunk /= 2;
  }
}

}  // namespace

std::optional<ShrinkResult> shrink(const ChaosCampaign& campaign,
                                   const RunOptions& opt,
                                   unsigned max_runs) {
  RunOptions probe = opt;
  probe.save_trace.clear();  // probes are throwaway runs

  ShrinkResult res;
  res.minimal = campaign;
  if (!fails(res.minimal, probe, res.runs, res.failure)) {
    return std::nullopt;
  }

  reduce(
      res.minimal, res.failure, res.runs, max_runs, probe,
      [](const ChaosCampaign& c) { return c.ops.size(); },
      [](ChaosCampaign& c, std::size_t start, std::size_t len) {
        c.ops.erase(c.ops.begin() + static_cast<std::ptrdiff_t>(start),
                    c.ops.begin() + static_cast<std::ptrdiff_t>(start + len));
      });
  reduce(
      res.minimal, res.failure, res.runs, max_runs, probe,
      [](const ChaosCampaign& c) { return c.fault_plan.events.size(); },
      [](ChaosCampaign& c, std::size_t start, std::size_t len) {
        auto& ev = c.fault_plan.events;
        ev.erase(ev.begin() + static_cast<std::ptrdiff_t>(start),
                 ev.begin() + static_cast<std::ptrdiff_t>(start + len));
      });

  // The kept `failure` is always the result of the final `minimal` run
  // (every accepted drop updates both together).  Re-run once with the
  // caller's options so a requested trace capture reflects the minimum.
  if (!opt.save_trace.empty()) {
    res.failure = run_campaign(res.minimal, opt);
    ++res.runs;
  }
  return res;
}

}  // namespace cpa::check
