// Scrub planning: what to scan, in which order, how fast, and the
// machine-comparable record of what a scrub run did.
//
// The walk itself needs drives, mounts, and metadata transactions, so it
// lives in HsmSystem::scrub(); this header holds the policy (ScrubConfig),
// the outcome (ScrubReport + per-repair log entries), and the pure
// ordering function both the HSM and the bench share.  Ordering reuses
// the tape-order idea of Sec 4.2.5: visiting fixity rows sorted by
// (cartridge, tape_seq) costs one mount per cartridge plus forward seeks,
// while naive archive order (row id) remounts on nearly every step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "integrity/fixity.hpp"
#include "simcore/time.hpp"
#include "tape/library.hpp"

namespace cpa::integrity {

struct ScrubConfig {
  /// Mover node whose SAN/LAN legs carry the scan reads.
  tape::NodeId node = 0;
  /// Visit fixity rows in (cartridge, tape_seq) order; false = archive
  /// (row-id) order, the naive baseline bench_scrub compares against.
  bool tape_ordered = true;
  /// Scan-rate ceiling in bytes per virtual second; 0 = unthrottled.
  /// Enforced as a pause after each segment, so a scrub holding one drive
  /// yields the tape subsystem to foreground recalls (the paper's
  /// shared-FTA lesson).
  double rate_limit_bps = 0.0;
  /// Tenant the scrub's drive holds are charged to (always Maintenance
  /// QoS); empty = unmanaged plant maintenance.
  std::string tenant;

  // Fluent refinement, mirroring SystemConfig/JobSpec/RecallOptions.
  ScrubConfig& with_node(tape::NodeId n) {
    node = n;
    return *this;
  }
  ScrubConfig& with_tape_ordered(bool on = true) {
    tape_ordered = on;
    return *this;
  }
  ScrubConfig& with_rate_limit_bps(double bps) {
    rate_limit_bps = bps;
    return *this;
  }
  ScrubConfig& with_tenant(std::string name) {
    tenant = std::move(name);
    return *this;
  }
};

/// One repair decision, renderable so determinism tests can compare whole
/// repair logs across runs.
struct ScrubRepair {
  enum class Action : std::uint8_t {
    RepairedFromCopy,  // clean duplicate read, segment rewritten
    Remigrated,        // rewritten from still-resident/premigrated disk data
    Unrepairable,      // no clean source anywhere
  };
  std::uint64_t object_id = 0;
  std::uint64_t bad_cartridge = 0;
  std::uint64_t bad_seq = 0;
  std::uint64_t source_cartridge = 0;  // clean copy read (0 if none)
  std::uint64_t new_cartridge = 0;     // rewritten location (0 if none)
  std::uint64_t new_seq = 0;
  Action action = Action::Unrepairable;

  [[nodiscard]] std::string render() const;
};

struct ScrubReport {
  std::uint64_t segments_scanned = 0;
  std::uint64_t bytes_scanned = 0;
  std::uint64_t cartridges_visited = 0;  // distinct mounts in visit order
  std::uint64_t mismatches = 0;
  std::uint64_t repaired_from_copy = 0;
  std::uint64_t remigrated = 0;
  std::uint64_t unrepairable = 0;
  std::uint64_t read_errors = 0;  // scan reads lost to loud faults
  std::vector<ScrubRepair> repair_log;
  sim::Tick started = 0;
  sim::Tick finished = 0;

  [[nodiscard]] std::uint64_t repaired() const {
    return repaired_from_copy + remigrated;
  }
  [[nodiscard]] double scan_rate_bps() const {
    const double dt = sim::to_seconds(finished - started);
    return dt > 0 ? static_cast<double>(bytes_scanned) / dt : 0.0;
  }
  /// The whole repair log, one line per entry — equal strings prove two
  /// runs made identical decisions.
  [[nodiscard]] std::string render_repair_log() const;
};

/// Snapshot of the rows a scrub pass will visit, in visit order.  Only
/// rows still expected to verify (status Ok) are scanned, so a segment
/// declared unrepairable is reported exactly once across runs.
[[nodiscard]] std::vector<FixityRow> plan_scrub_order(const FixityDb& db,
                                                      bool tape_ordered);

}  // namespace cpa::integrity
