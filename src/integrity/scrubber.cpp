#include "integrity/scrubber.hpp"

#include <algorithm>
#include <cstdio>

namespace cpa::integrity {

std::string ScrubRepair::render() const {
  const char* verb = "unrepairable";
  switch (action) {
    case Action::RepairedFromCopy: verb = "copy"; break;
    case Action::Remigrated: verb = "remigrate"; break;
    case Action::Unrepairable: verb = "unrepairable"; break;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "obj=%llu bad=%llu/%llu %s src=%llu new=%llu/%llu",
                static_cast<unsigned long long>(object_id),
                static_cast<unsigned long long>(bad_cartridge),
                static_cast<unsigned long long>(bad_seq), verb,
                static_cast<unsigned long long>(source_cartridge),
                static_cast<unsigned long long>(new_cartridge),
                static_cast<unsigned long long>(new_seq));
  return buf;
}

std::string ScrubReport::render_repair_log() const {
  std::string out;
  for (const ScrubRepair& r : repair_log) {
    out += r.render();
    out += '\n';
  }
  return out;
}

std::vector<FixityRow> plan_scrub_order(const FixityDb& db, bool tape_ordered) {
  std::vector<FixityRow> rows;
  rows.reserve(db.size());
  db.for_each([&](const FixityRow& r) {
    if (r.status == FixityStatus::Ok) rows.push_back(r);
  });
  // for_each yields primary-key (row-id) order: the naive archive order.
  if (tape_ordered) {
    std::sort(rows.begin(), rows.end(),
              [](const FixityRow& a, const FixityRow& b) {
                if (a.cartridge_id != b.cartridge_id) {
                  return a.cartridge_id < b.cartridge_id;
                }
                if (a.tape_seq != b.tape_seq) return a.tape_seq < b.tape_seq;
                return a.row_id < b.row_id;
              });
  }
  return rows;
}

}  // namespace cpa::integrity
