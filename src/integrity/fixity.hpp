// End-to-end fixity: seeded checksums over simulated content identity.
//
// The archive never materializes file bytes, so a "checksum" here is a
// fast splitmix-style mix over what identifies the content — object id,
// length, chunk index, and a per-run salt.  The same convention the
// chunked writer and verifier already share via `chunk_tag` extends to
// tape: every migrated unit's checksum is written with the segment (the
// drive stores it as the segment fingerprint) and recorded as a fixity
// row in metadb next to the tape position, CASTOR-style.  Silent bit-rot
// flips the fingerprint a reader observes without failing the read, so
// only recall verification or the scrubber notices — exactly the failure
// mode the paper's loud fault windows cannot model.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "metadb/table.hpp"

namespace cpa::integrity {

/// splitmix64 finalizer: the canonical mix `chunk_tag` already uses.
constexpr std::uint64_t fixity_mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Folds one more identity word into a running checksum.
constexpr std::uint64_t fixity_fold(std::uint64_t h, std::uint64_t v) {
  return fixity_mix(h ^ v);
}

/// Checksum of one content unit: (id, length, chunk index) under `salt`.
constexpr std::uint64_t fixity_checksum(std::uint64_t id, std::uint64_t length,
                                        std::uint64_t chunk_index,
                                        std::uint64_t salt) {
  return fixity_fold(fixity_fold(fixity_fold(fixity_mix(salt), id), length),
                     chunk_index);
}

enum class FixityStatus : std::uint8_t {
  Ok,            // expected to verify
  Unrepairable,  // mismatch with no clean source left; reported once
};

/// One checksum record: which object, where its bits sit on tape, and
/// what they must hash to.  `copy_index` 0 is the primary pool write;
/// 1.. are the copy-pool passes (same checksum, different volume).
struct FixityRow {
  std::uint64_t row_id = 0;  // primary key, insertion-ordered
  std::uint64_t object_id = 0;
  std::uint64_t cartridge_id = 0;
  std::uint64_t tape_seq = 0;
  std::uint64_t length = 0;
  std::uint64_t checksum = 0;
  unsigned copy_index = 0;
  FixityStatus status = FixityStatus::Ok;
};

/// The fixity table: metadb rows indexed by object and by cartridge, the
/// same export-and-index move Sec 4.2.5 applies to tape positions.  Row
/// ids are handed out sequentially, so iterating by primary key replays
/// archive order — the naive scrub order a tape-ordered walk beats.
class FixityDb {
 public:
  FixityDb()
      : table_([](const FixityRow& r) { return r.row_id; }) {
    by_object_ = table_.add_index_u64(
        [](const FixityRow& r) { return r.object_id; });
    by_cartridge_ = table_.add_index_u64(
        [](const FixityRow& r) { return r.cartridge_id; });
  }

  /// Durability listeners: fired after every in-memory mutation, with the
  /// resulting row (a full-row image, so redo replay is idempotent).  The
  /// WAL layer installs these; unset hooks cost nothing.
  struct MutationHooks {
    std::function<void(const FixityRow&)> on_upsert;
    std::function<void(std::uint64_t object_id)> on_erase_object;
  };
  void set_mutation_hooks(MutationHooks hooks) { hooks_ = std::move(hooks); }

  /// Records a checksum; returns the new row id.
  std::uint64_t add(std::uint64_t object_id, std::uint64_t cartridge_id,
                    std::uint64_t tape_seq, std::uint64_t length,
                    std::uint64_t checksum, unsigned copy_index) {
    FixityRow row;
    row.row_id = next_row_id_++;
    row.object_id = object_id;
    row.cartridge_id = cartridge_id;
    row.tape_seq = tape_seq;
    row.length = length;
    row.checksum = checksum;
    row.copy_index = copy_index;
    table_.insert(row);
    if (hooks_.on_upsert) hooks_.on_upsert(row);
    return row.row_id;
  }

  /// Recovery-path insert preserving the logged row id (replaying the
  /// same record twice converges on the same row).
  void restore(const FixityRow& row) {
    table_.upsert(row);
    if (row.row_id >= next_row_id_) next_row_id_ = row.row_id + 1;
  }

  /// Crash wipe: drops every row before checkpoint-load + log replay.
  void clear() {
    table_.clear();
    next_row_id_ = 1;
  }

  [[nodiscard]] const FixityRow* find(std::uint64_t row_id) const {
    return table_.find(row_id);
  }

  /// All rows for one object (primary + copies), primary-key order.
  [[nodiscard]] std::vector<const FixityRow*> by_object(
      std::uint64_t object_id) const {
    return table_.lookup_u64(by_object_, object_id);
  }

  /// The row covering one tape location of an object, if recorded.
  /// Allocation-free: visits the object's few rows in place.
  [[nodiscard]] const FixityRow* at_location(std::uint64_t object_id,
                                             std::uint64_t cartridge_id) const {
    const FixityRow* hit = nullptr;
    table_.for_each_u64(by_object_, object_id, [&](const FixityRow& r) {
      if (hit == nullptr && r.cartridge_id == cartridge_id) hit = &r;
    });
    return hit;
  }

  /// All rows on one cartridge (unordered; callers sort by tape_seq).
  [[nodiscard]] std::vector<const FixityRow*> on_cartridge(
      std::uint64_t cartridge_id) const {
    return table_.lookup_u64(by_cartridge_, cartridge_id);
  }

  /// Follows a segment move (reclamation / scrub repair): the row for
  /// `object_id` on `old_cart` now points at (new_cart, new_seq).
  bool relocate(std::uint64_t object_id, std::uint64_t old_cart,
                std::uint64_t new_cart, std::uint64_t new_seq) {
    const FixityRow* hit = nullptr;
    table_.for_each_u64(by_object_, object_id, [&](const FixityRow& r) {
      if (hit == nullptr && r.cartridge_id == old_cart) hit = &r;
    });
    if (hit == nullptr) return false;
    FixityRow updated = *hit;
    updated.cartridge_id = new_cart;
    updated.tape_seq = new_seq;
    table_.upsert(updated);
    if (hooks_.on_upsert) hooks_.on_upsert(updated);
    return true;
  }

  bool set_status(std::uint64_t row_id, FixityStatus status) {
    const FixityRow* r = table_.find(row_id);
    if (r == nullptr) return false;
    FixityRow updated = *r;
    updated.status = status;
    table_.upsert(updated);
    if (hooks_.on_upsert) hooks_.on_upsert(updated);
    return true;
  }

  bool erase_object(std::uint64_t object_id) {
    std::vector<std::uint64_t> row_ids;
    table_.for_each_u64(by_object_, object_id,
                        [&](const FixityRow& r) { row_ids.push_back(r.row_id); });
    if (row_ids.empty()) return false;
    table_.erase_bulk(row_ids);
    if (hooks_.on_erase_object) hooks_.on_erase_object(object_id);
    return true;
  }

  void for_each(const std::function<void(const FixityRow&)>& fn) const {
    table_.for_each(fn);
  }

  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] const metadb::TableStats& stats() const { return table_.stats(); }

 private:
  metadb::Table<FixityRow> table_;
  metadb::Table<FixityRow>::IndexId by_object_{};
  metadb::Table<FixityRow>::IndexId by_cartridge_{};
  MutationHooks hooks_;
  std::uint64_t next_row_id_ = 1;
};

}  // namespace cpa::integrity
