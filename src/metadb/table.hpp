// Embedded, indexed, in-memory table store.
//
// The paper's archive cannot query TSM 5.5's proprietary database for the
// (tape id, tape sequence) of a file — those fields are not indexed and
// cannot be — so LANL exported the relevant TSM tables to MySQL and added
// indexes; PFTool then queries MySQL to sort recalls into tape order
// (Sec 4.2.5), and the synchronous deleter joins GPFS file ids to TSM
// object ids through it (Sec 4.2.6).
//
// This module is the stand-in for that MySQL instance: a typed table with
// a unique primary key and any number of secondary indexes supporting
// point and range lookups.  Query counters distinguish indexed accesses
// from full scans so benchmarks can demonstrate why the unindexed TSM
// database was unusable for tape-ordered recall.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace cpa::metadb {

/// Aggregate access statistics for one table.
struct TableStats {
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t point_lookups = 0;
  std::uint64_t index_lookups = 0;
  std::uint64_t range_lookups = 0;
  std::uint64_t full_scans = 0;
  std::uint64_t rows_scanned = 0;  // rows touched by full scans
};

/// A table of `Row` keyed by a unique 64-bit primary key.
///
/// Secondary indexes must all be registered before the first insert (as
/// with a real DDL schema); violating this throws std::logic_error.
template <typename Row>
class Table {
 public:
  using Key = std::uint64_t;
  using IndexId = std::size_t;

  explicit Table(std::function<Key(const Row&)> primary_key)
      : pk_(std::move(primary_key)) {}

  /// Registers a secondary index on a 64-bit attribute.
  IndexId add_index_u64(std::function<std::uint64_t(const Row&)> key_fn) {
    require_empty("add_index_u64");
    u64_indexes_.push_back(U64Index{std::move(key_fn), {}});
    return u64_indexes_.size() - 1;
  }

  /// Registers a secondary index on a string attribute.
  IndexId add_index_str(std::function<std::string(const Row&)> key_fn) {
    require_empty("add_index_str");
    str_indexes_.push_back(StrIndex{std::move(key_fn), {}});
    return str_indexes_.size() - 1;
  }

  /// Inserts a row; returns false (and changes nothing) if the primary key
  /// already exists.
  bool insert(Row row) {
    const Key k = pk_(row);
    auto [it, inserted] = rows_.emplace(k, std::move(row));
    if (!inserted) return false;
    index_row(it->second, k);
    ++stats_.inserts;
    return true;
  }

  /// Inserts or replaces by primary key.
  void upsert(Row row) {
    const Key k = pk_(row);
    if (auto it = rows_.find(k); it != rows_.end()) {
      deindex_row(it->second, k);
      it->second = std::move(row);
      index_row(it->second, k);
    } else {
      insert(std::move(row));
    }
  }

  /// Point lookup by primary key; nullptr when absent.  The pointer stays
  /// valid until this row is erased or upserted.
  const Row* find(Key k) const {
    ++stats_.point_lookups;
    auto it = rows_.find(k);
    return it == rows_.end() ? nullptr : &it->second;
  }

  /// Erases by primary key; returns false when absent.
  bool erase(Key k) {
    auto it = rows_.find(k);
    if (it == rows_.end()) return false;
    deindex_row(it->second, k);
    rows_.erase(it);
    ++stats_.erases;
    return true;
  }

  /// All rows whose indexed attribute equals `value`, in primary-key order.
  std::vector<const Row*> lookup_u64(IndexId idx, std::uint64_t value) const {
    ++stats_.index_lookups;
    const auto& index = u64_indexes_.at(idx).map;
    std::vector<Key> keys;
    for (auto [it, end] = index.equal_range(value); it != end; ++it) {
      keys.push_back(it->second);
    }
    return rows_for(keys);
  }

  std::vector<const Row*> lookup_str(IndexId idx, const std::string& value) const {
    ++stats_.index_lookups;
    const auto& index = str_indexes_.at(idx).map;
    std::vector<Key> keys;
    for (auto [it, end] = index.equal_range(value); it != end; ++it) {
      keys.push_back(it->second);
    }
    return rows_for(keys);
  }

  /// All rows with indexed attribute in [lo, hi], ascending by attribute
  /// (ties broken by primary key).
  std::vector<const Row*> range_u64(IndexId idx, std::uint64_t lo,
                                    std::uint64_t hi) const {
    ++stats_.range_lookups;
    const auto& index = u64_indexes_.at(idx).map;
    std::vector<std::pair<std::uint64_t, Key>> hits;
    for (auto it = index.lower_bound(lo);
         it != index.end() && it->first <= hi; ++it) {
      hits.emplace_back(it->first, it->second);
    }
    std::sort(hits.begin(), hits.end());
    std::vector<const Row*> out;
    out.reserve(hits.size());
    for (const auto& [attr, key] : hits) out.push_back(&rows_.at(key));
    return out;
  }

  /// Full-table scan with a predicate — the only query the un-exported TSM
  /// database supports.  Deliberately counts every row touched.
  std::vector<const Row*> scan(const std::function<bool(const Row&)>& pred) const {
    ++stats_.full_scans;
    std::vector<const Row*> out;
    for (const auto& [k, row] : rows_) {
      ++stats_.rows_scanned;
      if (pred(row)) out.push_back(&row);
    }
    return out;
  }

  /// Visits every row (not counted as a scan; used for exports/backups).
  void for_each(const std::function<void(const Row&)>& fn) const {
    for (const auto& [k, row] : rows_) fn(row);
  }

  /// Drops every row (indexes stay registered).  Crash-recovery wipes a
  /// table before replaying the WAL image into it.
  void clear() {
    rows_.clear();
    for (auto& idx : u64_indexes_) idx.map.clear();
    for (auto& idx : str_indexes_) idx.map.clear();
  }

  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] bool empty() const { return rows_.empty(); }
  [[nodiscard]] const TableStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct U64Index {
    std::function<std::uint64_t(const Row&)> key_fn;
    std::multimap<std::uint64_t, Key> map;
  };
  struct StrIndex {
    std::function<std::string(const Row&)> key_fn;
    std::multimap<std::string, Key> map;
  };

  /// Materializes rows for index hits in primary-key order.
  std::vector<const Row*> rows_for(std::vector<Key>& keys) const {
    std::sort(keys.begin(), keys.end());
    std::vector<const Row*> out;
    out.reserve(keys.size());
    for (const Key k : keys) out.push_back(&rows_.at(k));
    return out;
  }

  void require_empty(const char* op) const {
    if (!rows_.empty()) {
      throw std::logic_error(std::string(op) + " after rows were inserted");
    }
  }

  void index_row(const Row& row, Key k) {
    for (auto& idx : u64_indexes_) idx.map.emplace(idx.key_fn(row), k);
    for (auto& idx : str_indexes_) idx.map.emplace(idx.key_fn(row), k);
  }

  void deindex_row(const Row& row, Key k) {
    for (auto& idx : u64_indexes_) erase_entry(idx.map, idx.key_fn(row), k);
    for (auto& idx : str_indexes_) erase_entry(idx.map, idx.key_fn(row), k);
  }

  template <typename Map, typename K>
  static void erase_entry(Map& map, const K& key, Key pk) {
    for (auto [it, end] = map.equal_range(key); it != end; ++it) {
      if (it->second == pk) {
        map.erase(it);
        return;
      }
    }
  }

  std::function<Key(const Row&)> pk_;
  std::map<Key, Row> rows_;
  std::vector<U64Index> u64_indexes_;
  std::vector<StrIndex> str_indexes_;
  mutable TableStats stats_;
};

}  // namespace cpa::metadb
