// Embedded, indexed, in-memory table store.
//
// The paper's archive cannot query TSM 5.5's proprietary database for the
// (tape id, tape sequence) of a file — those fields are not indexed and
// cannot be — so LANL exported the relevant TSM tables to MySQL and added
// indexes; PFTool then queries MySQL to sort recalls into tape order
// (Sec 4.2.5), and the synchronous deleter joins GPFS file ids to TSM
// object ids through it (Sec 4.2.6).
//
// This module is the stand-in for that MySQL instance: a typed table with
// a unique primary key and any number of secondary indexes supporting
// point and range lookups.  Query counters distinguish indexed accesses
// from full scans so benchmarks can demonstrate why the unindexed TSM
// database was unusable for tape-ordered recall.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace cpa::metadb {

/// Aggregate access statistics for one table.
struct TableStats {
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t point_lookups = 0;
  std::uint64_t index_lookups = 0;
  std::uint64_t range_lookups = 0;
  std::uint64_t full_scans = 0;
  std::uint64_t rows_scanned = 0;  // rows touched by full scans
  std::uint64_t bulk_batches = 0;  // bulk insert/upsert/erase calls
  std::uint64_t bulk_rows = 0;     // rows carried by those calls
};

/// A table of `Row` keyed by a unique 64-bit primary key.
///
/// Secondary indexes must all be registered before the first insert (as
/// with a real DDL schema); violating this throws std::logic_error.
template <typename Row>
class Table {
 public:
  using Key = std::uint64_t;
  using IndexId = std::size_t;

  explicit Table(std::function<Key(const Row&)> primary_key)
      : pk_(std::move(primary_key)) {}

  /// Registers a secondary index on a 64-bit attribute.
  IndexId add_index_u64(std::function<std::uint64_t(const Row&)> key_fn) {
    require_empty("add_index_u64");
    u64_indexes_.push_back(U64Index{std::move(key_fn), {}});
    return u64_indexes_.size() - 1;
  }

  /// Registers a secondary index on a string attribute.
  IndexId add_index_str(std::function<std::string(const Row&)> key_fn) {
    require_empty("add_index_str");
    str_indexes_.push_back(StrIndex{std::move(key_fn), {}});
    return str_indexes_.size() - 1;
  }

  /// Inserts a row; returns false (and changes nothing) if the primary key
  /// already exists.
  bool insert(Row row) {
    const Key k = pk_(row);
    auto [it, inserted] = rows_.emplace(k, std::move(row));
    if (!inserted) return false;
    index_row(it->second, k);
    ++stats_.inserts;
    return true;
  }

  /// Inserts or replaces by primary key.
  void upsert(Row row) {
    const Key k = pk_(row);
    if (auto it = rows_.find(k); it != rows_.end()) {
      deindex_row(it->second, k);
      it->second = std::move(row);
      index_row(it->second, k);
    } else {
      insert(std::move(row));
    }
  }

  /// Point lookup by primary key; nullptr when absent.  The pointer stays
  /// valid until this row is erased or upserted.
  const Row* find(Key k) const {
    ++stats_.point_lookups;
    auto it = rows_.find(k);
    return it == rows_.end() ? nullptr : &it->second;
  }

  /// Erases by primary key; returns false when absent.
  bool erase(Key k) {
    auto it = rows_.find(k);
    if (it == rows_.end()) return false;
    deindex_row(it->second, k);
    rows_.erase(it);
    ++stats_.erases;
    return true;
  }

  /// Bulk load: inserts `rows` in order, skipping primary-key duplicates;
  /// returns the number actually inserted.  One batch, however many rows —
  /// the metadata-batching layer's amortized write path.
  std::size_t insert_bulk(std::vector<Row> rows) {
    ++stats_.bulk_batches;
    stats_.bulk_rows += rows.size();
    std::size_t n = 0;
    for (Row& row : rows) {
      const Key k = pk_(row);
      auto [it, inserted] = rows_.emplace(k, std::move(row));
      if (!inserted) continue;
      index_row(it->second, k);
      ++stats_.inserts;
      ++n;
    }
    return n;
  }

  /// Bulk upsert: inserts or replaces each row by primary key, in order.
  void upsert_bulk(std::vector<Row> rows) {
    ++stats_.bulk_batches;
    stats_.bulk_rows += rows.size();
    for (Row& row : rows) {
      const Key k = pk_(row);
      if (auto it = rows_.find(k); it != rows_.end()) {
        deindex_row(it->second, k);
        it->second = std::move(row);
        index_row(it->second, k);
      } else {
        auto [it2, inserted] = rows_.emplace(k, std::move(row));
        index_row(it2->second, k);
        ++stats_.inserts;
      }
    }
  }

  /// Bulk erase by primary key; returns the number of rows removed.
  std::size_t erase_bulk(const std::vector<Key>& keys) {
    ++stats_.bulk_batches;
    stats_.bulk_rows += keys.size();
    std::size_t n = 0;
    for (const Key k : keys) {
      auto it = rows_.find(k);
      if (it == rows_.end()) continue;
      deindex_row(it->second, k);
      rows_.erase(it);
      ++stats_.erases;
      ++n;
    }
    return n;
  }

  /// All rows whose indexed attribute equals `value`, in primary-key order.
  std::vector<const Row*> lookup_u64(IndexId idx, std::uint64_t value) const {
    ++stats_.index_lookups;
    std::vector<const Row*> out;
    visit_u64(idx, value, [&](const Row& row) { out.push_back(&row); });
    return out;
  }

  std::vector<const Row*> lookup_str(IndexId idx, const std::string& value) const {
    ++stats_.index_lookups;
    std::vector<const Row*> out;
    visit_str(idx, value, [&](const Row& row) { out.push_back(&row); });
    return out;
  }

  /// Allocation-free visitor over the rows whose indexed attribute equals
  /// `value`, in primary-key order.  The hot-path alternative to
  /// materializing a `std::vector<const Row*>` per call.
  template <typename Fn>
  void for_each_u64(IndexId idx, std::uint64_t value, Fn&& fn) const {
    ++stats_.index_lookups;
    visit_u64(idx, value, std::forward<Fn>(fn));
  }

  template <typename Fn>
  void for_each_str(IndexId idx, const std::string& value, Fn&& fn) const {
    ++stats_.index_lookups;
    visit_str(idx, value, std::forward<Fn>(fn));
  }

  /// First matching row in primary-key order, or nullptr — the
  /// allocation-free point join (e.g. unique secondary keys).
  const Row* first_u64(IndexId idx, std::uint64_t value) const {
    ++stats_.index_lookups;
    const auto& index = u64_indexes_.at(idx).set;
    auto it = index.lower_bound(std::make_pair(value, Key{0}));
    if (it == index.end() || it->first != value) return nullptr;
    return &rows_.at(it->second);
  }

  const Row* first_str(IndexId idx, const std::string& value) const {
    ++stats_.index_lookups;
    const auto& index = str_indexes_.at(idx).set;
    auto it = index.lower_bound(std::make_pair(value, Key{0}));
    if (it == index.end() || it->first != value) return nullptr;
    return &rows_.at(it->second);
  }

  /// All rows with indexed attribute in [lo, hi], ascending by attribute
  /// (ties broken by primary key).
  std::vector<const Row*> range_u64(IndexId idx, std::uint64_t lo,
                                    std::uint64_t hi) const {
    ++stats_.range_lookups;
    std::vector<const Row*> out;
    visit_range_u64(idx, lo, hi, [&](const Row& row) { out.push_back(&row); });
    return out;
  }

  /// Allocation-free range visitor: rows with attribute in [lo, hi],
  /// ascending by attribute (ties broken by primary key).
  template <typename Fn>
  void for_each_range(IndexId idx, std::uint64_t lo, std::uint64_t hi,
                      Fn&& fn) const {
    ++stats_.range_lookups;
    visit_range_u64(idx, lo, hi, std::forward<Fn>(fn));
  }

  /// Full-table scan with a predicate — the only query the un-exported TSM
  /// database supports.  Deliberately counts every row touched.
  std::vector<const Row*> scan(const std::function<bool(const Row&)>& pred) const {
    ++stats_.full_scans;
    std::vector<const Row*> out;
    for (const auto& [k, row] : rows_) {
      ++stats_.rows_scanned;
      if (pred(row)) out.push_back(&row);
    }
    return out;
  }

  /// Visits every row (not counted as a scan; used for exports/backups).
  void for_each(const std::function<void(const Row&)>& fn) const {
    for (const auto& [k, row] : rows_) fn(row);
  }

  /// Drops every row (indexes stay registered).  Crash-recovery wipes a
  /// table before replaying the WAL image into it.
  void clear() {
    rows_.clear();
    for (auto& idx : u64_indexes_) idx.set.clear();
    for (auto& idx : str_indexes_) idx.set.clear();
  }

  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] bool empty() const { return rows_.empty(); }
  [[nodiscard]] const TableStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  // Indexes are ordered sets of (attribute, primary key): equality walks
  // yield primary-key order and range walks yield (attribute, pk) order
  // directly — no per-query materialize-and-sort — and de-indexing is one
  // O(log n) erase of the exact pair instead of an equal-range hunt.
  struct U64Index {
    std::function<std::uint64_t(const Row&)> key_fn;
    std::set<std::pair<std::uint64_t, Key>> set;
  };
  struct StrIndex {
    std::function<std::string(const Row&)> key_fn;
    std::set<std::pair<std::string, Key>> set;
  };

  template <typename Fn>
  void visit_u64(IndexId idx, std::uint64_t value, Fn&& fn) const {
    const auto& index = u64_indexes_.at(idx).set;
    for (auto it = index.lower_bound(std::make_pair(value, Key{0}));
         it != index.end() && it->first == value; ++it) {
      fn(rows_.at(it->second));
    }
  }

  template <typename Fn>
  void visit_str(IndexId idx, const std::string& value, Fn&& fn) const {
    const auto& index = str_indexes_.at(idx).set;
    for (auto it = index.lower_bound(std::make_pair(value, Key{0}));
         it != index.end() && it->first == value; ++it) {
      fn(rows_.at(it->second));
    }
  }

  template <typename Fn>
  void visit_range_u64(IndexId idx, std::uint64_t lo, std::uint64_t hi,
                       Fn&& fn) const {
    const auto& index = u64_indexes_.at(idx).set;
    for (auto it = index.lower_bound(std::make_pair(lo, Key{0}));
         it != index.end() && it->first <= hi; ++it) {
      fn(rows_.at(it->second));
    }
  }

  void require_empty(const char* op) const {
    if (!rows_.empty()) {
      throw std::logic_error(std::string(op) + " after rows were inserted");
    }
  }

  void index_row(const Row& row, Key k) {
    for (auto& idx : u64_indexes_) idx.set.emplace(idx.key_fn(row), k);
    for (auto& idx : str_indexes_) idx.set.emplace(idx.key_fn(row), k);
  }

  void deindex_row(const Row& row, Key k) {
    for (auto& idx : u64_indexes_) {
      idx.set.erase(std::make_pair(idx.key_fn(row), k));
    }
    for (auto& idx : str_indexes_) {
      idx.set.erase(std::make_pair(idx.key_fn(row), k));
    }
  }

  std::function<Key(const Row&)> pk_;
  std::map<Key, Row> rows_;
  std::vector<U64Index> u64_indexes_;
  std::vector<StrIndex> str_indexes_;
  mutable TableStats stats_;
};

}  // namespace cpa::metadb
