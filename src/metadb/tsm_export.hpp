// The indexed export of the archive server's object database.
//
// Mirrors Sec 4.2.5: "we export the necessary parts of the TSM database to
// a MySQL database, which we can then index.  PFTool queries this database
// to get tape and sequence ID for files that are migrated to tape."
//
// One row per migrated object.  Indexed by GPFS file id (synchronous
// delete join), by path (recall planning), and by tape id (tape-ordered
// recall).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "metadb/table.hpp"

namespace cpa::metadb {

struct TapeObjectRow {
  std::uint64_t object_id = 0;   // TSM object id (primary key)
  std::uint64_t gpfs_file_id = 0;  // GPFS-unique file id
  std::string path;              // path within the archive file system
  std::uint64_t size_bytes = 0;
  std::uint64_t tape_id = 0;     // cartridge the data lives on
  std::uint64_t tape_seq = 0;    // sequential position on that cartridge
};

class TsmExportDb {
 public:
  TsmExportDb()
      : table_([](const TapeObjectRow& r) { return r.object_id; }) {
    by_file_id_ = table_.add_index_u64(
        [](const TapeObjectRow& r) { return r.gpfs_file_id; });
    by_tape_ = table_.add_index_u64(
        [](const TapeObjectRow& r) { return r.tape_id; });
    by_path_ = table_.add_index_str(
        [](const TapeObjectRow& r) { return r.path; });
  }

  void upsert(TapeObjectRow row) { table_.upsert(std::move(row)); }
  bool erase_object(std::uint64_t object_id) { return table_.erase(object_id); }

  [[nodiscard]] const TapeObjectRow* by_object_id(std::uint64_t id) const {
    return table_.find(id);
  }

  /// Resolves a GPFS file id to its TSM object (Sec 4.2.6 join).
  /// Allocation-free: file ids are unique, so the first hit is the row.
  [[nodiscard]] const TapeObjectRow* by_gpfs_file_id(std::uint64_t fid) const {
    return table_.first_u64(by_file_id_, fid);
  }

  /// Resolves a path to its tape location (Sec 4.2.5 recall query).
  /// Allocation-free: live paths are unique in the export.
  [[nodiscard]] const TapeObjectRow* by_path(const std::string& path) const {
    return table_.first_str(by_path_, path);
  }

  /// All objects on one cartridge (unordered; callers sort by tape_seq).
  [[nodiscard]] std::vector<const TapeObjectRow*> on_tape(std::uint64_t tape_id) const {
    return table_.lookup_u64(by_tape_, tape_id);
  }

  /// Allocation-free visitor over one cartridge's objects (primary-key
  /// order) — the tape-ordered recall planner's hot path.
  template <typename Fn>
  void for_each_on_tape(std::uint64_t tape_id, Fn&& fn) const {
    table_.for_each_u64(by_tape_, tape_id, std::forward<Fn>(fn));
  }

  /// Unindexed lookup by path — the query shape available against the raw
  /// TSM database.  Exists so benchmarks can compare it with `by_path`.
  [[nodiscard]] const TapeObjectRow* by_path_unindexed(const std::string& path) const {
    auto rows = table_.scan([&](const TapeObjectRow& r) { return r.path == path; });
    return rows.empty() ? nullptr : rows.front();
  }

  /// Crash-recovery wipe; the export is rebuilt row-by-row from the
  /// replayed object catalog.
  void clear() { table_.clear(); }

  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] const TableStats& stats() const { return table_.stats(); }
  void reset_stats() { table_.reset_stats(); }

 private:
  Table<TapeObjectRow> table_;
  Table<TapeObjectRow>::IndexId by_file_id_{};
  Table<TapeObjectRow>::IndexId by_tape_{};
  Table<TapeObjectRow>::IndexId by_path_{};
};

}  // namespace cpa::metadb
