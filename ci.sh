#!/usr/bin/env bash
# Local CI: build the Release and sanitizer presets and run the full test
# suite under each.  Usage: ./ci.sh [extra ctest args]
set -euo pipefail
cd "$(dirname "$0")"

JOBS=$(nproc 2>/dev/null || echo 4)

# Tests carry ctest labels (tier1 / slow / chaos — see tests/CMakeLists.txt).
# The tier-1 pass is the fast merge gate; the labelled tiers run after it so
# a chaos or slow failure never hides a unit-test failure.
run_preset() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L tier1 \
    ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L "chaos|slow" \
    ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
}

CTEST_ARGS=("$@")

# CPA_WERROR stays off: GCC 12's -O3 -Werror=restrict false-positives on
# std::string concatenation in pre-existing tests.
echo "== Release =="
run_preset build-release -DCMAKE_BUILD_TYPE=Release

echo "== ASan+UBSan =="
run_preset build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCPA_SANITIZE=address,undefined

# Differential oracle, explicitly and at full depth, under the sanitizer
# build: 24 seeds x 4500 randomized flow-network mutations, each checked
# bit-for-bit against the from-scratch water-filling reference (the full
# ctest pass above already ran it once; this run is the gate that fails
# loudly on any rate divergence).
echo "== Flow-scheduler differential oracle (ASan) =="
./build-asan/tests/simcore_test --gtest_filter='RandomChurn/FlowOracle.*'

# Churn-throughput smoke (Release build: this one is a perf measurement).
# The bench cross-checks incremental vs reference rates at every checkpoint
# and exits non-zero on divergence.
echo "== bench_flow_churn smoke (Release) =="
./build-release/bench/bench_flow_churn --smoke --json=build-release/BENCH_flow_churn.json

# Fault-matrix smoke (under the sanitizer build): each canned plan injects
# a different failure class against a live pfcp + migration; the bench
# exits non-zero if any file is left unrecovered.
echo "== Fault matrix (ASan) =="
FAULT_PLANS=(
  "cluster.node[1]:fail@t=45s,repair=120s;cluster.node[2]:fail@t=60s,repair=120s"
  "tape.drive[0]:fail@t=30s,repair=180s;tape.drive[1]:fail@t=60s,repair=180s"
  "hsm.server[0]:restart@t=100s,outage=45s;net.pool[trunk0]:degrade@t=20s,factor=0.25,repair=60s"
)
for plan in "${FAULT_PLANS[@]}"; do
  echo "-- plan: $plan"
  ./build-asan/bench/bench_restart_transfer --fault="$plan"
done

# Scrub smoke (under the sanitizer build): inject silent corruptions and
# walk the whole repair lattice — every one must be detected, repaired
# from the copy pool / premigrated disk data where a clean source exists,
# and reported unrepairable exactly once where none does.  The bench
# exits non-zero if any injected corruption goes undetected.
echo "== Scrub smoke (ASan) =="
./build-asan/bench/bench_scrub --smoke --json=build-asan/BENCH_scrub.json

# Fair-share smoke (under the sanitizer build): a bulk recall storm vs
# staggered interactive restores, FIFO vs the admission scheduler.  The
# bench exits non-zero if interactive p99 isolation drops below 5x, a job
# starves past the aging bound, or the profiler's conservation invariant
# breaks with the admission-wait bucket in play.
echo "== Fair-share smoke (ASan) =="
./build-asan/bench/bench_fairshare --smoke --json=build-asan/BENCH_fairshare.json

# Recovery smoke (under the sanitizer build): drive a redo-logged metadata
# plant through a mutation history, power-fail it, and replay.  The bench
# exits non-zero if any durably-acked object is missing after recovery or
# checkpointed recovery is not faster than full replay at max history.
echo "== Recovery smoke (ASan) =="
./build-asan/bench/bench_recovery --smoke --json=build-asan/BENCH_recovery.json

# Metadata-batching smoke (under the sanitizer build): the group-commit
# txn storm and the synchronous-delete sweep, batched (B=16, W=4) vs
# stop-and-wait, over 1..8 servers.  The bench exits non-zero if the
# one-server storm speeds up by less than the 5x acceptance bar.
echo "== Metadata-batching smoke (ASan) =="
./build-asan/bench/bench_md_batch --smoke --json=build-asan/BENCH_md_batch.json

# Chaos smoke (under the sanitizer build): the deterministic simulation
# harness replays the checked-in seed corpus (one seed per past bug class,
# ops pinned in the file), then sweeps a handful of fresh seeds at a
# bounded op count — CPA_CHECK_OPS scales the sweep depth for bigger
# machines.  On any invariant violation cpa_check prints the violation and
# a copy-pasteable `cpa_check --seed=... --shrink` repro line and exits
# non-zero.  The two --doctor self-tests prove the oracles and the
# shrinker still catch a planted bug (a silently rotted segment, a dropped
# fixity row) — a gate that cannot fail is not a gate.
echo "== Chaos smoke (ASan) =="
CHAOS_OPS="${CPA_CHECK_OPS:-150}"
./build-asan/bench/cpa_check --corpus=tests/check/seed_corpus.txt
CPA_CHECK_OPS="$CHAOS_OPS" ./build-asan/bench/cpa_check --seed=1 --seeds=4
./build-asan/bench/cpa_check --seed=11 --ops=120 --doctor=scrub
./build-asan/bench/cpa_check --seed=11 --ops=120 --doctor=fixity

# Crash matrix (under the sanitizer build): the same chaos campaigns with
# whole-archive power failures mixed into the op stream — every metadata
# mutation rides the WAL, each crash-restart op tears the un-fsynced tail
# at an op-derived seed and replays recovery, and each seed additionally
# runs the quiescent metamorphic gate (drained plant + crash + recover
# must equal the never-crashed state digest).  Zero invariant violations
# required; durably-acked files must restore byte-exact after recovery.
echo "== Crash matrix (ASan) =="
./build-asan/bench/cpa_check --seed=1 --seeds=20 --ops="$CHAOS_OPS" --crashes

# The same crash matrix with metadata batching on: power failures now land
# on in-flight group-committed batches, which must tear away whole (no
# partial batch in the recovered catalog, no leaked completion callbacks).
echo "== Crash matrix, batched metadata (ASan) =="
./build-asan/bench/cpa_check --seed=1 --seeds=20 --ops="$CHAOS_OPS" --crashes --md-batch=8

# Attribution-conservation gate (under the sanitizer build): run the
# causal critical-path profiler over the fig10 campaign and require that
# every job's bucket decomposition sums exactly, in virtual ticks, to its
# wall-clock.  pfprof exits non-zero on any violation — a dropped or
# double-counted handoff in the span DAG fails CI here.
echo "== pfprof conservation gate (ASan) =="
./build-asan/bench/pfprof --campaign --scale=0.01 --seed=2009 --out=/dev/null

# Perf-regression gate: diff the freshly produced BENCH_*.json against the
# checked-in baselines.  CPA_UPDATE_BASELINE=1 regenerates the baselines
# instead of gating (mirroring CPA_UPDATE_GOLDEN for the campaign digest).
echo "== bench regression gate =="
BASELINES=bench/baselines
REGRESS=./build-release/bench/bench_regress
if [[ "${CPA_UPDATE_BASELINE:-0}" == "1" ]]; then
  mkdir -p "$BASELINES"
  cp build-release/BENCH_flow_churn.json "$BASELINES/BENCH_flow_churn.json"
  cp build-asan/BENCH_scrub.json "$BASELINES/BENCH_scrub.json"
  cp build-asan/BENCH_fairshare.json "$BASELINES/BENCH_fairshare.json"
  cp build-asan/BENCH_recovery.json "$BASELINES/BENCH_recovery.json"
  cp build-asan/BENCH_md_batch.json "$BASELINES/BENCH_md_batch.json"
  echo "baselines regenerated in $BASELINES"
else
  # Churn speedup is wall-clock derived, so only a collapse (for example
  # the incremental scheduler silently reverting to full recompute) trips
  # the loose tolerance; pool counts are deterministic and exact.
  "$REGRESS" --baseline="$BASELINES/BENCH_flow_churn.json" \
    --fresh=build-release/BENCH_flow_churn.json --key=flows \
    --metric=pools --metric=speedup:75:higher
  # Fair-share latencies are virtual-time deterministic, but the ratio is
  # the headline: only an isolation collapse should trip the gate.
  "$REGRESS" --baseline="$BASELINES/BENCH_fairshare.json" \
    --fresh=build-asan/BENCH_fairshare.json --key=mode \
    --metric=bulk_jobs --metric=interactive_jobs \
    --metric=p99_ratio:40:higher
  # Scrub verdict counts are virtual-time deterministic: exact equality.
  "$REGRESS" --baseline="$BASELINES/BENCH_scrub.json" \
    --fresh=build-asan/BENCH_scrub.json --key=scenario \
    --metric=injected --metric=detected --metric=repaired_from_copy \
    --metric=remigrated --metric=unrepairable --metric=rescrub_mismatches \
    --metric=segments --metric=tape_ordered_mounts --metric=naive_mounts
  # Recovery counts and virtual-time durations are deterministic; the
  # replay counts are exact, and recovery time may only collapse (a
  # checkpoint silently not installing would triple it) within 50%.
  "$REGRESS" --baseline="$BASELINES/BENCH_recovery.json" \
    --fresh=build-asan/BENCH_recovery.json --key=scenario \
    --metric=mutations --metric=replayed \
    --metric=recovery_ms:50:lower
  # Batching results are virtual-time deterministic; the headline speedup
  # may only collapse (batching silently falling back to stop-and-wait
  # would drop it to 1x) within 20%.
  "$REGRESS" --baseline="$BASELINES/BENCH_md_batch.json" \
    --fresh=build-asan/BENCH_md_batch.json --key=case \
    --metric=servers --metric=storm_speedup:20:higher \
    --metric=delete_speedup:20:higher
  # Self-test: a doctored baseline must trip the gate (exit non-zero).
  doctored=$(mktemp)
  sed -E 's/"speedup": [0-9.]+/"speedup": 99999.0/' \
    "$BASELINES/BENCH_flow_churn.json" > "$doctored"
  if "$REGRESS" --baseline="$doctored" \
      --fresh=build-release/BENCH_flow_churn.json --key=flows \
      --metric=speedup:75:higher >/dev/null 2>&1; then
    echo "ERROR: regression gate failed to flag a doctored baseline" >&2
    rm -f "$doctored"
    exit 1
  fi
  rm -f "$doctored"
fi

echo "CI passed."
