#!/usr/bin/env bash
# Local CI: build the Release and sanitizer presets and run the full test
# suite under each.  Usage: ./ci.sh [extra ctest args]
set -euo pipefail
cd "$(dirname "$0")"

JOBS=$(nproc 2>/dev/null || echo 4)

run_preset() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
    ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
}

CTEST_ARGS=("$@")

# CPA_WERROR stays off: GCC 12's -O3 -Werror=restrict false-positives on
# std::string concatenation in pre-existing tests.
echo "== Release =="
run_preset build-release -DCMAKE_BUILD_TYPE=Release

echo "== ASan+UBSan =="
run_preset build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCPA_SANITIZE=address,undefined

echo "CI passed."
